//! `Dir_i_NB`: limited-pointer directories with **no broadcast**.
//!
//! The directory keeps up to `i` cache pointers per block. Because no
//! broadcast fallback exists, "the number of processors that have copies of
//! a datum must always be less than or equal to i": when an `i+1`-th reader
//! arrives, an existing copy is forcibly invalidated (a *pointer eviction*).
//!
//! Three paper schemes are all points of this one implementation:
//!
//! * `i = 1` — the paper's **Dir1NB** ("perhaps the simplest directory-based
//!   consistency scheme"): a block lives in at most one cache; every miss to
//!   a block held elsewhere invalidates that copy.
//! * `1 < i < n` — **DiriNB** (§6): "trades off a slightly increased miss
//!   rate for avoiding broadcasts altogether".
//! * `i ≥ n` — **DirnNB**, the Censier-Feautrier full map: a valid bit per
//!   cache, sequential invalidations in place of broadcast.

use crate::event::{Event, EvictOutcome, MissContext, Outcome, WriteHitContext};
use crate::protocol::{Protocol, ProtocolKind};
use dircc_cache::{BlockMap, CacheArray};
use dircc_types::{AccessKind, BlockAddr, CacheId, CacheIdSet};
use std::collections::VecDeque;

/// Per-cache copy state (multiple clean copies, at most one dirty copy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Copy {
    Clean,
    Dirty,
}

/// One directory entry: FIFO-ordered pointers plus the dirty bit.
#[derive(Debug, Clone, Default)]
struct Entry {
    /// Pointers in insertion order (front = oldest = eviction victim).
    ptrs: VecDeque<CacheId>,
    dirty: bool,
}

/// A `Dir_i_NB` limited-pointer no-broadcast directory protocol.
///
/// ```
/// use dircc_core::directory::DirNb;
/// use dircc_core::Protocol;
///
/// let p = DirNb::dir1nb(4);
/// assert_eq!(p.name(), "Dir1NB");
/// let full = DirNb::full_map(4);
/// assert_eq!(full.name(), "DirnNB");
/// ```
#[derive(Debug, Clone)]
pub struct DirNb {
    pointers: u32,
    caches: CacheArray<Copy>,
    dir: BlockMap<Entry>,
}

impl DirNb {
    /// Creates a `Dir_i_NB` protocol with `pointers` directory indices over
    /// `n_caches` caches.
    ///
    /// # Panics
    ///
    /// Panics if `pointers == 0` (the paper: "The one case that does not
    /// make sense is Dir0NB, since there is no way to obtain exclusive
    /// access") or `n_caches` is out of `1..=64`.
    pub fn new(pointers: u32, n_caches: usize) -> Self {
        assert!(pointers >= 1, "Dir0NB does not make sense (paper, section 2)");
        DirNb { pointers, caches: CacheArray::new(n_caches), dir: BlockMap::new() }
    }

    /// The paper's `Dir1NB`: a single pointer, at most one cached copy.
    pub fn dir1nb(n_caches: usize) -> Self {
        Self::new(1, n_caches)
    }

    /// The Censier-Feautrier full map (`DirnNB`): one pointer (valid bit)
    /// per cache, sequential invalidates.
    pub fn full_map(n_caches: usize) -> Self {
        Self::new(n_caches as u32, n_caches)
    }

    /// Number of directory pointers per entry.
    pub fn pointers(&self) -> u32 {
        self.pointers
    }

    fn entry(&mut self, block: BlockAddr) -> &mut Entry {
        self.dir.entry(block)
    }

    fn classify_miss(&self, block: BlockAddr, first_ref: bool) -> MissContext {
        let holders = self.caches.holders(block);
        if holders.is_empty() {
            if first_ref {
                MissContext::FirstRef
            } else {
                MissContext::MemoryOnly
            }
        } else if self.dir.get(block).is_some_and(|e| e.dirty) {
            MissContext::DirtyElsewhere
        } else {
            MissContext::CleanElsewhere { copies: holders.len() as u32 }
        }
    }

    /// Adds `cache` as a clean sharer, evicting the oldest pointer if the
    /// entry is full. `free_victim` is a cache that may be evicted without
    /// an extra control message (it was already notified this transaction).
    /// Returns `(control_messages, directory_evictions)`.
    fn add_sharer(
        &mut self,
        block: BlockAddr,
        cache: CacheId,
        free_victim: Option<CacheId>,
    ) -> (u32, u32) {
        let pointers = self.pointers as usize;
        let mut control = 0;
        let mut evictions = 0;
        // Evict until a pointer is free (a single eviction in practice).
        loop {
            let entry = self.dir.entry(block);
            if entry.ptrs.len() < pointers {
                break;
            }
            let victim = entry.ptrs.pop_front().expect("full entry is nonempty");
            self.caches.remove(victim, block);
            evictions += 1;
            if free_victim != Some(victim) {
                control += 1;
            }
        }
        let entry = self.dir.entry(block);
        entry.ptrs.push_back(cache);
        entry.dirty = false;
        self.caches.set(cache, block, Copy::Clean);
        (control, evictions)
    }

    /// Invalidates every current sharer, returning how many directed
    /// messages that took (excluding `except`, which invalidates for free —
    /// used when the flush request already reached it).
    fn invalidate_all(&mut self, block: BlockAddr, except: Option<CacheId>) -> u32 {
        let holders = self.caches.holders(block);
        let mut control = 0;
        for h in holders.iter() {
            self.caches.remove(h, block);
            if except != Some(h) {
                control += 1;
            }
        }
        self.dir.remove(block);
        control
    }

    fn read(&mut self, cache: CacheId, block: BlockAddr, first_ref: bool) -> Outcome {
        if self.caches.state(cache, block).is_some() {
            return Outcome::quiet(Event::ReadHit);
        }
        let ctx = self.classify_miss(block, first_ref);
        let mut out = Outcome::quiet(Event::ReadMiss(ctx));
        match ctx {
            MissContext::DirtyElsewhere => {
                // One message tells the dirty cache to write back (and, if
                // its pointer is about to be evicted, to invalidate too).
                let owner =
                    self.caches.holders(block).sole().expect("dirty block has exactly one holder");
                out.control_messages += 1;
                out = out.with_write_back();
                // The owner retains a clean copy (Censier-Feautrier); the
                // directory clears the dirty bit.
                self.caches.set(owner, block, Copy::Clean);
                self.entry(block).dirty = false;
                let (control, evictions) = self.add_sharer(block, cache, Some(owner));
                out.control_messages += control;
                out.directory_evictions += evictions.saturating_sub(
                    u32::from(self.pointers == 1), // Dir1NB's displacement is inherent
                );
            }
            MissContext::CleanElsewhere { .. }
            | MissContext::FirstRef
            | MissContext::MemoryOnly => {
                let (control, evictions) = self.add_sharer(block, cache, None);
                out.control_messages += control;
                // Dir1NB's displacement of the single copy is inherent to
                // the scheme, not a pointer-overflow eviction.
                out.directory_evictions += evictions.saturating_sub(u32::from(self.pointers == 1));
            }
        }
        out
    }

    fn write(&mut self, cache: CacheId, block: BlockAddr, first_ref: bool) -> Outcome {
        match self.caches.state(cache, block) {
            Some(Copy::Dirty) => Outcome::quiet(Event::WriteHit(WriteHitContext::Dirty)),
            Some(Copy::Clean) => {
                let others = self.caches.other_holders(cache, block);
                let event = if others.is_empty() {
                    Event::WriteHit(WriteHitContext::CleanExclusive)
                } else {
                    Event::WriteHit(WriteHitContext::CleanShared { others: others.len() as u32 })
                };
                let mut out = Outcome::quiet(event);
                for h in others.iter() {
                    self.caches.remove(h, block);
                    out.control_messages += 1;
                }
                let entry = self.entry(block);
                entry.ptrs.clear();
                entry.ptrs.push_back(cache);
                entry.dirty = true;
                self.caches.set(cache, block, Copy::Dirty);
                out
            }
            None => {
                let ctx = self.classify_miss(block, first_ref);
                let mut out = Outcome::quiet(Event::WriteMiss(ctx));
                match ctx {
                    MissContext::DirtyElsewhere => {
                        let owner = self
                            .caches
                            .holders(block)
                            .sole()
                            .expect("dirty block has exactly one holder");
                        // One message: invalidate + write back.
                        out.control_messages += self.invalidate_all(block, None).min(1);
                        debug_assert!(self.caches.holders(block).is_empty());
                        let _ = owner;
                        out = out.with_write_back();
                    }
                    MissContext::CleanElsewhere { .. } => {
                        out.control_messages += self.invalidate_all(block, None);
                    }
                    MissContext::FirstRef | MissContext::MemoryOnly => {}
                }
                let entry = self.entry(block);
                entry.ptrs.clear();
                entry.ptrs.push_back(cache);
                entry.dirty = true;
                self.caches.set(cache, block, Copy::Dirty);
                out
            }
        }
    }
}

impl Protocol for DirNb {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::DirNb { pointers: self.pointers }
    }

    fn num_caches(&self) -> usize {
        self.caches.num_caches()
    }

    fn access(
        &mut self,
        cache: CacheId,
        kind: AccessKind,
        block: BlockAddr,
        first_ref: bool,
    ) -> Outcome {
        match kind {
            AccessKind::Read => self.read(cache, block, first_ref),
            AccessKind::Write => self.write(cache, block, first_ref),
            AccessKind::InstrFetch => panic!("instruction fetches never reach the protocol"),
        }
    }

    fn evict(&mut self, cache: CacheId, block: BlockAddr) -> EvictOutcome {
        let Some(copy) = self.caches.remove(cache, block) else {
            return EvictOutcome::SILENT;
        };
        let entry = self.dir.get_mut(block).expect("held block has an entry");
        entry.ptrs.retain(|c| *c != cache);
        if copy == Copy::Dirty {
            entry.dirty = false;
        }
        if entry.ptrs.is_empty() {
            self.dir.remove(block);
        }
        if copy == Copy::Dirty {
            EvictOutcome::WRITE_BACK
        } else {
            // Clean replacement hint keeps the pointers exact.
            EvictOutcome::NOTIFY
        }
    }

    fn reserve_blocks(&mut self, blocks: usize) {
        self.caches.reserve_blocks(blocks);
        self.dir.reserve_blocks(blocks);
    }

    fn holders(&self, block: BlockAddr) -> CacheIdSet {
        self.caches.holders(block)
    }

    fn check_invariants(&self) -> Result<(), String> {
        self.caches.check_residency()?;
        for (block, entry) in self.dir.iter() {
            let holders = self.caches.holders(block);
            let ptr_set: CacheIdSet = entry.ptrs.iter().copied().collect();
            if ptr_set != holders {
                return Err(format!(
                    "{block}: directory pointers {ptr_set} disagree with holders {holders}"
                ));
            }
            if entry.ptrs.len() != ptr_set.len() {
                return Err(format!("{block}: duplicate directory pointers"));
            }
            if entry.ptrs.len() > self.pointers as usize {
                return Err(format!(
                    "{block}: {} pointers exceed the Dir{}NB limit",
                    entry.ptrs.len(),
                    self.pointers
                ));
            }
            if entry.dirty {
                if entry.ptrs.len() != 1 {
                    return Err(format!("{block}: dirty with {} pointers", entry.ptrs.len()));
                }
                let owner = entry.ptrs[0];
                if self.caches.state(owner, block) != Some(&Copy::Dirty) {
                    return Err(format!("{block}: directory dirty but {owner} copy is clean"));
                }
            } else {
                for c in entry.ptrs.iter() {
                    if self.caches.state(*c, block) != Some(&Copy::Clean) {
                        return Err(format!("{block}: directory clean but {c} copy is dirty"));
                    }
                }
            }
        }
        // Every held block must have a directory entry.
        for (block, holders) in self.caches.iter_blocks() {
            if !self.dir.contains_key(block) && !holders.is_empty() {
                return Err(format!("{block}: cached without a directory entry"));
            }
        }
        Ok(())
    }

    fn encode_state(&self, out: &mut Vec<u64>) {
        self.caches.encode_states(out, |s| u64::from(*s == Copy::Dirty));
        // Pointer order is behavior (the front is the FIFO eviction
        // victim), so the entries encode in insertion order.
        out.push(self.dir.len() as u64);
        for (block, entry) in self.dir.iter() {
            out.push(block.index());
            out.push(u64::from(entry.dirty));
            out.push(entry.ptrs.len() as u64);
            out.extend(entry.ptrs.iter().map(|c| u64::from(c.raw())));
        }
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }
    fn c(i: u16) -> CacheId {
        CacheId::new(i)
    }
    fn read(p: &mut DirNb, cache: u16, blk: u64, first: bool) -> Outcome {
        p.access(c(cache), AccessKind::Read, b(blk), first)
    }
    fn write(p: &mut DirNb, cache: u16, blk: u64, first: bool) -> Outcome {
        p.access(c(cache), AccessKind::Write, b(blk), first)
    }

    #[test]
    #[should_panic(expected = "Dir0NB")]
    fn dir0nb_rejected() {
        let _ = DirNb::new(0, 4);
    }

    #[test]
    fn first_reference_classified() {
        let mut p = DirNb::dir1nb(4);
        let o = read(&mut p, 0, 1, true);
        assert_eq!(o.event, Event::ReadMiss(MissContext::FirstRef));
        assert_eq!(o.control_messages, 0);
        p.check_invariants().unwrap();
    }

    #[test]
    fn dir1nb_allows_single_copy_only() {
        let mut p = DirNb::dir1nb(4);
        read(&mut p, 0, 1, true);
        let o = read(&mut p, 1, 1, false);
        assert_eq!(o.event, Event::ReadMiss(MissContext::CleanElsewhere { copies: 1 }));
        assert_eq!(o.control_messages, 1, "the other copy is invalidated");
        assert!(!o.write_back);
        assert_eq!(p.holders(b(1)).sole(), Some(c(1)));
        p.check_invariants().unwrap();
    }

    #[test]
    fn dir1nb_dirty_handoff_is_one_message_plus_writeback() {
        let mut p = DirNb::dir1nb(4);
        write(&mut p, 0, 1, true);
        let o = read(&mut p, 1, 1, false);
        assert_eq!(o.event, Event::ReadMiss(MissContext::DirtyElsewhere));
        assert!(o.write_back);
        assert!(o.memory_updated);
        assert_eq!(
            o.control_messages, 1,
            "invalidate+write-back is a single notification in Dir1NB"
        );
        assert_eq!(p.holders(b(1)).sole(), Some(c(1)));
        p.check_invariants().unwrap();
    }

    #[test]
    fn full_map_allows_many_readers_then_sequential_invalidates() {
        let mut p = DirNb::full_map(4);
        read(&mut p, 0, 1, true);
        for cache in 1..4 {
            let o = read(&mut p, cache, 1, false);
            assert_eq!(
                o.event,
                Event::ReadMiss(MissContext::CleanElsewhere { copies: u32::from(cache) })
            );
            assert_eq!(o.control_messages, 0, "readers join freely in a full map");
        }
        assert_eq!(p.holders(b(1)).len(), 4);
        // Writer invalidates the other three sequentially.
        let o = write(&mut p, 0, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::CleanShared { others: 3 }));
        assert_eq!(o.control_messages, 3);
        assert!(!o.used_broadcast);
        assert_eq!(p.holders(b(1)).sole(), Some(c(0)));
        p.check_invariants().unwrap();
    }

    #[test]
    fn full_map_read_miss_to_dirty_keeps_owner_clean() {
        let mut p = DirNb::full_map(4);
        write(&mut p, 0, 1, true);
        let o = read(&mut p, 1, 1, false);
        assert_eq!(o.event, Event::ReadMiss(MissContext::DirtyElsewhere));
        assert!(o.write_back);
        assert_eq!(o.control_messages, 1, "one flush request");
        let holders = p.holders(b(1));
        assert_eq!(holders.len(), 2, "owner keeps a clean copy");
        // Both copies now clean: a third write hit is a clean-shared hit.
        let o = write(&mut p, 0, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::CleanShared { others: 1 }));
        p.check_invariants().unwrap();
    }

    #[test]
    fn limited_pointers_evict_fifo() {
        let mut p = DirNb::new(2, 4);
        read(&mut p, 0, 1, true);
        read(&mut p, 1, 1, false);
        // Third reader overflows the 2 pointers: cache 0 (oldest) evicted.
        let o = read(&mut p, 2, 1, false);
        assert_eq!(o.event, Event::ReadMiss(MissContext::CleanElsewhere { copies: 2 }));
        assert_eq!(o.control_messages, 1, "one eviction invalidate");
        assert_eq!(o.directory_evictions, 1);
        let holders = p.holders(b(1));
        assert!(!holders.contains(c(0)));
        assert!(holders.contains(c(1)) && holders.contains(c(2)));
        p.check_invariants().unwrap();
    }

    #[test]
    fn evicted_reader_re_misses_as_memory_only_when_none_hold() {
        let mut p = DirNb::dir1nb(2);
        read(&mut p, 0, 1, true);
        write(&mut p, 1, 1, false); // invalidates cache 0, dirty in 1
        read(&mut p, 0, 1, false); // flushes 1, moves to 0
                                   // Now only cache 0 holds it clean. Invalidate it via cache 1 write,
                                   // then write back... simulate memory-only by removing all:
        let o = write(&mut p, 1, 1, false);
        assert_eq!(o.event, Event::WriteMiss(MissContext::CleanElsewhere { copies: 1 }));
        p.check_invariants().unwrap();
    }

    #[test]
    fn write_miss_to_dirty_block_costs_one_message() {
        let mut p = DirNb::full_map(4);
        write(&mut p, 0, 1, true);
        let o = write(&mut p, 1, 1, false);
        assert_eq!(o.event, Event::WriteMiss(MissContext::DirtyElsewhere));
        assert_eq!(o.control_messages, 1);
        assert!(o.write_back);
        assert_eq!(p.holders(b(1)).sole(), Some(c(1)));
        p.check_invariants().unwrap();
    }

    #[test]
    fn write_hit_dirty_is_free() {
        let mut p = DirNb::full_map(4);
        write(&mut p, 0, 1, true);
        let o = write(&mut p, 0, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::Dirty));
        assert_eq!(o, Outcome::quiet(Event::WriteHit(WriteHitContext::Dirty)));
    }

    #[test]
    fn write_hit_clean_exclusive_transitions_to_dirty() {
        let mut p = DirNb::full_map(4);
        read(&mut p, 0, 1, true);
        let o = write(&mut p, 0, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::CleanExclusive));
        assert_eq!(o.control_messages, 0);
        let o = write(&mut p, 0, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::Dirty));
        p.check_invariants().unwrap();
    }

    #[test]
    fn ping_pong_under_dir1nb() {
        let mut p = DirNb::dir1nb(2);
        write(&mut p, 0, 7, true);
        for _ in 0..10 {
            let o = write(&mut p, 1, 7, false);
            assert_eq!(o.event, Event::WriteMiss(MissContext::DirtyElsewhere));
            let o = write(&mut p, 0, 7, false);
            assert_eq!(o.event, Event::WriteMiss(MissContext::DirtyElsewhere));
        }
        p.check_invariants().unwrap();
    }

    #[test]
    fn names() {
        assert_eq!(DirNb::dir1nb(4).name(), "Dir1NB");
        assert_eq!(DirNb::new(2, 4).name(), "Dir2NB");
        assert_eq!(DirNb::full_map(8).name(), "DirnNB");
        assert_eq!(DirNb::full_map(8).pointers(), 8);
    }
}

//! Tang's duplicate-directory scheme.
//!
//! "Tang duplicates each of the individual cache directories as his main
//! directory. To find out which caches contain a block, Tang's scheme must
//! search each of these duplicate directories." The *state-change model* is
//! identical to the Censier-Feautrier full map (clean blocks in many
//! caches, dirty blocks in exactly one) — the paper classifies both as
//! `Dir_n_NB` — so the transitions delegate to [`DirNb::full_map`]. What
//! differs is the directory *organization*: a lookup must search `n`
//! duplicate tag stores instead of indexing one flat entry, which the bus
//! crate's Tang cost schema models as an `n`-fold directory-access cost.

use super::dir_nb::DirNb;
use crate::event::Outcome;
use crate::protocol::{Protocol, ProtocolKind};
use dircc_types::{AccessKind, BlockAddr, CacheId, CacheIdSet};

/// Tang's duplicate-tag full-map directory protocol.
///
/// ```
/// use dircc_core::directory::Tang;
/// use dircc_core::Protocol;
///
/// assert_eq!(Tang::new(4).name(), "Tang");
/// ```
#[derive(Debug, Clone)]
pub struct Tang {
    inner: DirNb,
}

impl Tang {
    /// Creates a Tang protocol over `n_caches` caches.
    ///
    /// # Panics
    ///
    /// Panics if `n_caches` is out of `1..=64`.
    pub fn new(n_caches: usize) -> Self {
        Tang { inner: DirNb::full_map(n_caches) }
    }
}

impl Protocol for Tang {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Tang
    }

    fn num_caches(&self) -> usize {
        self.inner.num_caches()
    }

    fn access(
        &mut self,
        cache: CacheId,
        kind: AccessKind,
        block: BlockAddr,
        first_ref: bool,
    ) -> Outcome {
        self.inner.access(cache, kind, block, first_ref)
    }

    fn evict(&mut self, cache: CacheId, block: BlockAddr) -> crate::event::EvictOutcome {
        self.inner.evict(cache, block)
    }

    fn reserve_blocks(&mut self, blocks: usize) {
        self.inner.reserve_blocks(blocks);
    }

    fn holders(&self, block: BlockAddr) -> CacheIdSet {
        self.inner.holders(block)
    }

    fn check_invariants(&self) -> Result<(), String> {
        self.inner.check_invariants()
    }

    fn encode_state(&self, out: &mut Vec<u64>) {
        self.inner.encode_state(out);
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, MissContext};

    #[test]
    fn events_match_the_full_map() {
        let mut tang = Tang::new(4);
        let mut fm = DirNb::full_map(4);
        let b = BlockAddr::from_index(3);
        for (cache, kind, first) in [
            (0u16, AccessKind::Write, true),
            (1, AccessKind::Read, false),
            (2, AccessKind::Read, false),
            (1, AccessKind::Write, false),
        ] {
            let a = tang.access(CacheId::new(cache), kind, b, first);
            let c = fm.access(CacheId::new(cache), kind, b, first);
            assert_eq!(a, c);
        }
        tang.check_invariants().unwrap();
    }

    #[test]
    fn kind_and_name_identify_tang() {
        let p = Tang::new(8);
        assert_eq!(p.kind(), ProtocolKind::Tang);
        assert_eq!(p.name(), "Tang");
        assert!(p.kind().is_directory());
    }

    #[test]
    fn dirty_block_lives_in_one_cache() {
        let mut p = Tang::new(4);
        let b = BlockAddr::from_index(1);
        p.access(CacheId::new(0), AccessKind::Write, b, true);
        let o = p.access(CacheId::new(1), AccessKind::Read, b, false);
        assert_eq!(o.event, Event::ReadMiss(MissContext::DirtyElsewhere));
        assert!(o.write_back);
    }
}

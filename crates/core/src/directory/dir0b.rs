//! `Dir0B`: the Archibald-Baer two-bit broadcast directory.
//!
//! "The directory saves only two bits with each block in main memory. These
//! bits encode one of four possible states: block not cached, block clean in
//! exactly one cache, block clean in an unknown number of caches, and block
//! dirty in exactly one cache. The directory therefore contains no
//! information to indicate which caches contain a block; the scheme relies
//! on broadcasts to perform invalidates and write-back requests."
//!
//! The *block clean in exactly one cache* state is what lets a writer that
//! already holds the only copy skip the broadcast.

use crate::event::{Event, EvictOutcome, MissContext, Outcome, WriteHitContext};
use crate::protocol::{Protocol, ProtocolKind};
use dircc_cache::{BlockMap, CacheArray};
use dircc_types::{AccessKind, BlockAddr, CacheId, CacheIdSet};

/// Per-cache copy state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Copy {
    Clean,
    Dirty,
}

/// The four two-bit directory states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DirState {
    /// Block not cached anywhere.
    NotCached,
    /// Clean in exactly one cache (the state that avoids broadcasts on
    /// write hits by the sole holder).
    CleanOne,
    /// Clean in an unknown number of caches (≥ 1; the directory can't tell).
    CleanMany,
    /// Dirty in exactly one cache.
    DirtyOne,
}

/// The Archibald-Baer `Dir0B` protocol.
///
/// ```
/// use dircc_core::directory::Dir0B;
/// use dircc_core::Protocol;
///
/// assert_eq!(Dir0B::new(4).name(), "Dir0B");
/// ```
#[derive(Debug, Clone)]
pub struct Dir0B {
    caches: CacheArray<Copy>,
    dir: BlockMap<DirState>,
}

impl Dir0B {
    /// Creates a `Dir0B` protocol over `n_caches` caches.
    ///
    /// # Panics
    ///
    /// Panics if `n_caches` is out of `1..=64`.
    pub fn new(n_caches: usize) -> Self {
        Dir0B { caches: CacheArray::new(n_caches), dir: BlockMap::new() }
    }

    fn dir_state(&self, block: BlockAddr) -> DirState {
        self.dir.get(block).copied().unwrap_or(DirState::NotCached)
    }

    fn classify_miss(&self, block: BlockAddr, first_ref: bool) -> MissContext {
        match self.dir_state(block) {
            DirState::NotCached => {
                if first_ref {
                    MissContext::FirstRef
                } else {
                    MissContext::MemoryOnly
                }
            }
            DirState::DirtyOne => MissContext::DirtyElsewhere,
            DirState::CleanOne | DirState::CleanMany => {
                MissContext::CleanElsewhere { copies: self.caches.holders(block).len() as u32 }
            }
        }
    }

    fn read(&mut self, cache: CacheId, block: BlockAddr, first_ref: bool) -> Outcome {
        if self.caches.state(cache, block).is_some() {
            return Outcome::quiet(Event::ReadHit);
        }
        let ctx = self.classify_miss(block, first_ref);
        let mut out = Outcome::quiet(Event::ReadMiss(ctx));
        match self.dir_state(block) {
            DirState::DirtyOne => {
                // Broadcast write-back request; the owner flushes and keeps
                // a clean copy; memory becomes current.
                out.used_broadcast = true;
                out = out.with_write_back();
                let owner = self.caches.holders(block).sole().expect("DirtyOne has one holder");
                self.caches.set(owner, block, Copy::Clean);
                self.dir.insert(block, DirState::CleanMany);
            }
            DirState::CleanOne | DirState::CleanMany => {
                self.dir.insert(block, DirState::CleanMany);
            }
            DirState::NotCached => {
                self.dir.insert(block, DirState::CleanOne);
            }
        }
        self.caches.set(cache, block, Copy::Clean);
        out
    }

    fn write(&mut self, cache: CacheId, block: BlockAddr, first_ref: bool) -> Outcome {
        match self.caches.state(cache, block) {
            Some(Copy::Dirty) => {
                // "If the block is already dirty, there is no need to check
                // the central directory, so the write can proceed
                // immediately."
                Outcome::quiet(Event::WriteHit(WriteHitContext::Dirty))
            }
            Some(Copy::Clean) => {
                // "If the block is clean, then the cache notifies the
                // central directory, which must invalidate the block in all
                // of the other caches where it resides." The CleanOne state
                // avoids the broadcast when we are the only holder.
                let others = self.caches.other_holders(cache, block);
                let (event, broadcast) = if others.is_empty() {
                    (Event::WriteHit(WriteHitContext::CleanExclusive), false)
                } else {
                    (
                        Event::WriteHit(WriteHitContext::CleanShared {
                            others: others.len() as u32,
                        }),
                        // CleanOne would mean no others; dir must say
                        // CleanMany here, requiring a broadcast.
                        true,
                    )
                };
                let mut out = Outcome::quiet(event);
                out.used_broadcast = broadcast;
                for h in others.iter() {
                    self.caches.remove(h, block);
                }
                self.caches.set(cache, block, Copy::Dirty);
                self.dir.insert(block, DirState::DirtyOne);
                out
            }
            None => {
                let ctx = self.classify_miss(block, first_ref);
                let mut out = Outcome::quiet(Event::WriteMiss(ctx));
                match self.dir_state(block) {
                    DirState::DirtyOne => {
                        // Broadcast: the owner flushes back and invalidates.
                        out.used_broadcast = true;
                        out = out.with_write_back();
                        self.caches.remove_all_except(block, None);
                    }
                    DirState::CleanOne | DirState::CleanMany => {
                        out.used_broadcast = true;
                        self.caches.remove_all_except(block, None);
                    }
                    DirState::NotCached => {}
                }
                self.caches.set(cache, block, Copy::Dirty);
                self.dir.insert(block, DirState::DirtyOne);
                out
            }
        }
    }
}

impl Protocol for Dir0B {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Dir0B
    }

    fn num_caches(&self) -> usize {
        self.caches.num_caches()
    }

    fn access(
        &mut self,
        cache: CacheId,
        kind: AccessKind,
        block: BlockAddr,
        first_ref: bool,
    ) -> Outcome {
        match kind {
            AccessKind::Read => self.read(cache, block, first_ref),
            AccessKind::Write => self.write(cache, block, first_ref),
            AccessKind::InstrFetch => panic!("instruction fetches never reach the protocol"),
        }
    }

    fn evict(&mut self, cache: CacheId, block: BlockAddr) -> EvictOutcome {
        let Some(copy) = self.caches.remove(cache, block) else {
            return EvictOutcome::SILENT;
        };
        let remaining = self.caches.holders(block);
        if copy == Copy::Dirty {
            // The dirty copy flushes; the two-bit entry returns to
            // NotCached.
            self.dir.insert(block, DirState::NotCached);
            return EvictOutcome::WRITE_BACK;
        }
        if remaining.is_empty() {
            self.dir.insert(block, DirState::NotCached);
        }
        // The two-bit directory keeps no pointers: clean replacements are
        // silent (CleanMany legitimately over-approximates).
        EvictOutcome::SILENT
    }

    fn reserve_blocks(&mut self, blocks: usize) {
        self.caches.reserve_blocks(blocks);
        self.dir.reserve_blocks(blocks);
    }

    fn holders(&self, block: BlockAddr) -> CacheIdSet {
        self.caches.holders(block)
    }

    fn check_invariants(&self) -> Result<(), String> {
        self.caches.check_residency()?;
        for (block, holders) in self.caches.iter_blocks() {
            let state = self.dir_state(block);
            match state {
                DirState::NotCached => {
                    return Err(format!("{block}: cached but directory says NotCached"));
                }
                DirState::CleanOne => {
                    if holders.len() != 1 {
                        return Err(format!("{block}: CleanOne but {} holders", holders.len()));
                    }
                }
                DirState::CleanMany => {
                    if holders.is_empty() {
                        return Err(format!("{block}: CleanMany but no holders"));
                    }
                }
                DirState::DirtyOne => {
                    if holders.len() != 1 {
                        return Err(format!("{block}: DirtyOne but {} holders", holders.len()));
                    }
                }
            }
            // Copy states must agree with the directory.
            for h in holders.iter() {
                let copy = self.caches.state(h, block).expect("holder has state");
                let expect_dirty = state == DirState::DirtyOne;
                if (*copy == Copy::Dirty) != expect_dirty {
                    return Err(format!("{block}: copy state in {h} disagrees with {state:?}"));
                }
            }
        }
        // Directory entries claiming residency must have holders.
        for (block, state) in self.dir.iter() {
            if *state != DirState::NotCached && self.caches.holders(block).is_empty() {
                return Err(format!("{block}: directory {state:?} but nothing cached"));
            }
        }
        Ok(())
    }

    fn encode_state(&self, out: &mut Vec<u64>) {
        self.caches.encode_states(out, |s| u64::from(*s == Copy::Dirty));
        // Eviction leaves explicit NotCached entries behind; an absent
        // entry means the same thing, so both normalise to "skipped".
        let live: Vec<_> = self.dir.iter().filter(|(_, s)| **s != DirState::NotCached).collect();
        out.push(live.len() as u64);
        for (block, state) in live {
            out.push(block.index());
            out.push(match state {
                DirState::NotCached => unreachable!("filtered above"),
                DirState::CleanOne => 1,
                DirState::CleanMany => 2,
                DirState::DirtyOne => 3,
            });
        }
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }
    fn read(p: &mut Dir0B, cache: u16, blk: u64, first: bool) -> Outcome {
        p.access(CacheId::new(cache), AccessKind::Read, b(blk), first)
    }
    fn write(p: &mut Dir0B, cache: u16, blk: u64, first: bool) -> Outcome {
        p.access(CacheId::new(cache), AccessKind::Write, b(blk), first)
    }

    #[test]
    fn multiple_clean_readers_join_quietly() {
        let mut p = Dir0B::new(4);
        read(&mut p, 0, 1, true);
        for cache in 1..4 {
            let o = read(&mut p, cache, 1, false);
            assert!(!o.used_broadcast);
            assert_eq!(o.control_messages, 0);
        }
        assert_eq!(p.holders(b(1)).len(), 4);
        p.check_invariants().unwrap();
    }

    #[test]
    fn clean_exclusive_write_hit_avoids_broadcast() {
        let mut p = Dir0B::new(4);
        read(&mut p, 0, 1, true);
        let o = write(&mut p, 0, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::CleanExclusive));
        assert!(!o.used_broadcast, "the 'clean in exactly one cache' state obviates the broadcast");
        p.check_invariants().unwrap();
    }

    #[test]
    fn clean_shared_write_hit_broadcasts() {
        let mut p = Dir0B::new(4);
        read(&mut p, 0, 1, true);
        read(&mut p, 1, 1, false);
        read(&mut p, 2, 1, false);
        let o = write(&mut p, 0, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::CleanShared { others: 2 }));
        assert!(o.used_broadcast);
        assert_eq!(p.holders(b(1)).sole(), Some(CacheId::new(0)));
        p.check_invariants().unwrap();
    }

    #[test]
    fn read_miss_to_dirty_broadcasts_writeback_request() {
        let mut p = Dir0B::new(4);
        write(&mut p, 0, 1, true);
        let o = read(&mut p, 1, 1, false);
        assert_eq!(o.event, Event::ReadMiss(MissContext::DirtyElsewhere));
        assert!(o.used_broadcast, "Dir0B has no pointer: write-back requests broadcast");
        assert!(o.write_back);
        assert_eq!(p.holders(b(1)).len(), 2);
        p.check_invariants().unwrap();
    }

    #[test]
    fn write_miss_to_dirty_flushes_and_invalidates() {
        let mut p = Dir0B::new(4);
        write(&mut p, 0, 1, true);
        let o = write(&mut p, 1, 1, false);
        assert_eq!(o.event, Event::WriteMiss(MissContext::DirtyElsewhere));
        assert!(o.used_broadcast && o.write_back);
        assert_eq!(p.holders(b(1)).sole(), Some(CacheId::new(1)));
        p.check_invariants().unwrap();
    }

    #[test]
    fn write_miss_to_clean_broadcast_invalidates() {
        let mut p = Dir0B::new(4);
        read(&mut p, 0, 1, true);
        read(&mut p, 2, 1, false);
        let o = write(&mut p, 1, 1, false);
        assert_eq!(o.event, Event::WriteMiss(MissContext::CleanElsewhere { copies: 2 }));
        assert!(o.used_broadcast);
        assert!(!o.write_back);
        p.check_invariants().unwrap();
    }

    #[test]
    fn dirty_write_hit_is_free() {
        let mut p = Dir0B::new(4);
        write(&mut p, 0, 1, true);
        let o = write(&mut p, 0, 1, false);
        assert_eq!(o, Outcome::quiet(Event::WriteHit(WriteHitContext::Dirty)));
    }

    #[test]
    fn first_and_memory_only_classification() {
        let mut p = Dir0B::new(2);
        let o = write(&mut p, 0, 9, true);
        assert_eq!(o.event, Event::WriteMiss(MissContext::FirstRef));
        // Dir0B never empties a block's residency (invalidation installs the
        // writer), so MemoryOnly is unreachable here; confirm the dirty path
        // instead.
        let o = read(&mut p, 1, 9, false);
        assert_eq!(o.event, Event::ReadMiss(MissContext::DirtyElsewhere));
    }

    #[test]
    fn read_after_flush_hits_clean_many() {
        let mut p = Dir0B::new(4);
        write(&mut p, 0, 1, true);
        read(&mut p, 1, 1, false);
        // Owner kept a clean copy; its next write is a clean-shared hit.
        let o = write(&mut p, 0, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::CleanShared { others: 1 }));
        assert!(o.used_broadcast);
        p.check_invariants().unwrap();
    }
}

//! `Dir_i_B` (i ≥ 1): limited pointers **with** a broadcast bit.
//!
//! §6: "The directory maintains exactly one pointer and a broadcast bit per
//! block (Dir1B). If more than one cache has a block the broadcast bit is
//! set. When the directory is queried, a single invalidation request is
//! issued if the broadcast bit is clear; otherwise, the invalidation must be
//! broadcast. ... This scheme can be extended to use i pointers (i > 1) and
//! a broadcast bit (DiriB)."
//!
//! Once the broadcast bit is set the directory no longer knows *who* holds
//! the block, so invalidations (and write-back requests cannot occur —
//! dirty blocks always have a pointer) fall back to broadcast delivery,
//! whose cost the §6 model parameterizes as `b` cycles.

use crate::event::{Event, EvictOutcome, MissContext, Outcome, WriteHitContext};
use crate::protocol::{Protocol, ProtocolKind};
use dircc_cache::{BlockMap, CacheArray};
use dircc_types::{AccessKind, BlockAddr, CacheId, CacheIdSet};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Copy {
    Clean,
    Dirty,
}

/// Directory entry: up to `i` pointers, a broadcast bit, and a dirty bit.
#[derive(Debug, Clone, Default)]
struct Entry {
    ptrs: Vec<CacheId>,
    broadcast: bool,
    dirty: bool,
}

/// A `Dir_i_B` limited-pointer broadcast directory protocol.
///
/// ```
/// use dircc_core::directory::DirB;
/// use dircc_core::Protocol;
///
/// assert_eq!(DirB::dir1b(4).name(), "Dir1B");
/// assert_eq!(DirB::new(2, 8).name(), "Dir2B");
/// ```
#[derive(Debug, Clone)]
pub struct DirB {
    pointers: u32,
    caches: CacheArray<Copy>,
    dir: BlockMap<Entry>,
}

impl DirB {
    /// Creates a `Dir_i_B` protocol with `pointers ≥ 1` indices.
    ///
    /// # Panics
    ///
    /// Panics if `pointers == 0` (that point in the design space is
    /// [`Dir0B`](crate::directory::Dir0B), which has different directory
    /// states) or `n_caches` is out of `1..=64`.
    pub fn new(pointers: u32, n_caches: usize) -> Self {
        assert!(pointers >= 1, "use Dir0B for the zero-pointer broadcast scheme");
        DirB { pointers, caches: CacheArray::new(n_caches), dir: BlockMap::new() }
    }

    /// The §6 `Dir1B` scheme: one pointer plus a broadcast bit.
    pub fn dir1b(n_caches: usize) -> Self {
        Self::new(1, n_caches)
    }

    /// Number of directory pointers per entry.
    pub fn pointers(&self) -> u32 {
        self.pointers
    }

    fn classify_miss(&self, block: BlockAddr, first_ref: bool) -> MissContext {
        let holders = self.caches.holders(block);
        if holders.is_empty() {
            if first_ref {
                MissContext::FirstRef
            } else {
                MissContext::MemoryOnly
            }
        } else if self.dir.get(block).is_some_and(|e| e.dirty) {
            MissContext::DirtyElsewhere
        } else {
            MissContext::CleanElsewhere { copies: holders.len() as u32 }
        }
    }

    /// Records a new clean sharer: fill a pointer if one is free, else set
    /// the broadcast bit.
    fn add_sharer(&mut self, block: BlockAddr, cache: CacheId) {
        let pointers = self.pointers as usize;
        let entry = self.dir.entry(block);
        entry.dirty = false;
        if entry.ptrs.len() < pointers {
            entry.ptrs.push(cache);
        } else {
            entry.broadcast = true;
        }
        self.caches.set(cache, block, Copy::Clean);
    }

    /// Invalidates all copies (except the requester, if cached): directed
    /// messages when pointers cover everyone, broadcast otherwise. Updates
    /// the outcome's delivery accounting and empties the entry.
    fn invalidate_others(&mut self, block: BlockAddr, except: Option<CacheId>, out: &mut Outcome) {
        let entry = self.dir.entry(block);
        let broadcast = entry.broadcast;
        let victims = match except {
            Some(c) => self.caches.holders(block).without(c),
            None => self.caches.holders(block),
        };
        if victims.is_empty() {
            // Nothing to do; entry bookkeeping handled by caller.
            return;
        }
        if broadcast {
            out.used_broadcast = true;
        } else {
            out.control_messages += victims.len() as u32;
        }
        for v in victims.iter() {
            self.caches.remove(v, block);
        }
    }

    fn set_sole_dirty(&mut self, block: BlockAddr, cache: CacheId) {
        let entry = self.dir.entry(block);
        entry.ptrs.clear();
        entry.ptrs.push(cache);
        entry.broadcast = false;
        entry.dirty = true;
        self.caches.set(cache, block, Copy::Dirty);
    }

    fn read(&mut self, cache: CacheId, block: BlockAddr, first_ref: bool) -> Outcome {
        if self.caches.state(cache, block).is_some() {
            return Outcome::quiet(Event::ReadHit);
        }
        let ctx = self.classify_miss(block, first_ref);
        let mut out = Outcome::quiet(Event::ReadMiss(ctx));
        if ctx == MissContext::DirtyElsewhere {
            // Dirty blocks always have a valid pointer (broadcast bit can
            // only be set for clean blocks), so the flush is directed.
            let owner = self.caches.holders(block).sole().expect("dirty has one holder");
            out.control_messages += 1;
            out = out.with_write_back();
            self.caches.set(owner, block, Copy::Clean);
            self.dir.entry(block).dirty = false;
        }
        self.add_sharer(block, cache);
        out
    }

    fn write(&mut self, cache: CacheId, block: BlockAddr, first_ref: bool) -> Outcome {
        match self.caches.state(cache, block) {
            Some(Copy::Dirty) => Outcome::quiet(Event::WriteHit(WriteHitContext::Dirty)),
            Some(Copy::Clean) => {
                let others = self.caches.other_holders(cache, block);
                let event = if others.is_empty() {
                    Event::WriteHit(WriteHitContext::CleanExclusive)
                } else {
                    Event::WriteHit(WriteHitContext::CleanShared { others: others.len() as u32 })
                };
                let mut out = Outcome::quiet(event);
                self.invalidate_others(block, Some(cache), &mut out);
                self.set_sole_dirty(block, cache);
                out
            }
            None => {
                let ctx = self.classify_miss(block, first_ref);
                let mut out = Outcome::quiet(Event::WriteMiss(ctx));
                if ctx == MissContext::DirtyElsewhere {
                    out = out.with_write_back();
                }
                self.invalidate_others(block, None, &mut out);
                self.set_sole_dirty(block, cache);
                out
            }
        }
    }
}

impl Protocol for DirB {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::DirB { pointers: self.pointers }
    }

    fn num_caches(&self) -> usize {
        self.caches.num_caches()
    }

    fn access(
        &mut self,
        cache: CacheId,
        kind: AccessKind,
        block: BlockAddr,
        first_ref: bool,
    ) -> Outcome {
        match kind {
            AccessKind::Read => self.read(cache, block, first_ref),
            AccessKind::Write => self.write(cache, block, first_ref),
            AccessKind::InstrFetch => panic!("instruction fetches never reach the protocol"),
        }
    }

    fn evict(&mut self, cache: CacheId, block: BlockAddr) -> EvictOutcome {
        let Some(copy) = self.caches.remove(cache, block) else {
            return EvictOutcome::SILENT;
        };
        let entry = self.dir.get_mut(block).expect("held block has an entry");
        let was_pointed = entry.ptrs.contains(&cache);
        entry.ptrs.retain(|c| *c != cache);
        if copy == Copy::Dirty {
            entry.dirty = false;
        }
        if self.caches.holders(block).is_empty() {
            self.dir.remove(block);
        }
        if copy == Copy::Dirty {
            EvictOutcome::WRITE_BACK
        } else if was_pointed {
            // Replacement hint frees the pointer slot.
            EvictOutcome::NOTIFY
        } else {
            // Unpointed (broadcast-covered) copies drop silently; the
            // broadcast bit stays conservative.
            EvictOutcome::SILENT
        }
    }

    fn reserve_blocks(&mut self, blocks: usize) {
        self.caches.reserve_blocks(blocks);
        self.dir.reserve_blocks(blocks);
    }

    fn holders(&self, block: BlockAddr) -> CacheIdSet {
        self.caches.holders(block)
    }

    fn check_invariants(&self) -> Result<(), String> {
        self.caches.check_residency()?;
        for (block, entry) in self.dir.iter() {
            let holders = self.caches.holders(block);
            let ptr_set: CacheIdSet = entry.ptrs.iter().copied().collect();
            if ptr_set.len() != entry.ptrs.len() {
                return Err(format!("{block}: duplicate pointers"));
            }
            if entry.ptrs.len() > self.pointers as usize {
                return Err(format!("{block}: pointer overflow"));
            }
            if !ptr_set.is_subset_of(holders) {
                return Err(format!(
                    "{block}: pointers {ptr_set} not a subset of holders {holders}"
                ));
            }
            if !entry.broadcast && ptr_set != holders {
                return Err(format!(
                    "{block}: broadcast clear but pointers {ptr_set} != holders {holders}"
                ));
            }
            if entry.dirty {
                if holders.len() != 1 || entry.broadcast {
                    return Err(format!("{block}: dirty entry must be one pointed holder"));
                }
                let owner = entry.ptrs[0];
                if self.caches.state(owner, block) != Some(&Copy::Dirty) {
                    return Err(format!("{block}: dirty entry but clean copy"));
                }
            } else {
                for h in holders.iter() {
                    if self.caches.state(h, block) != Some(&Copy::Clean) {
                        return Err(format!("{block}: clean entry but dirty copy in {h}"));
                    }
                }
            }
        }
        for (block, holders) in self.caches.iter_blocks() {
            if !holders.is_empty() && !self.dir.contains_key(block) {
                return Err(format!("{block}: cached without directory entry"));
            }
        }
        Ok(())
    }

    fn encode_state(&self, out: &mut Vec<u64>) {
        self.caches.encode_states(out, |s| u64::from(*s == Copy::Dirty));
        // Unlike Dir_i_NB there is no FIFO eviction, so pointer order is
        // irrelevant; a bitset canonicalises arrival-order permutations.
        out.push(self.dir.len() as u64);
        for (block, entry) in self.dir.iter() {
            let ptr_set: CacheIdSet = entry.ptrs.iter().copied().collect();
            out.push(block.index());
            out.push(u64::from(entry.dirty));
            out.push(u64::from(entry.broadcast));
            out.push(ptr_set.bits());
        }
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }
    fn read(p: &mut DirB, cache: u16, blk: u64, first: bool) -> Outcome {
        p.access(CacheId::new(cache), AccessKind::Read, b(blk), first)
    }
    fn write(p: &mut DirB, cache: u16, blk: u64, first: bool) -> Outcome {
        p.access(CacheId::new(cache), AccessKind::Write, b(blk), first)
    }

    #[test]
    fn single_sharer_invalidation_is_directed() {
        let mut p = DirB::dir1b(4);
        read(&mut p, 0, 1, true);
        let o = write(&mut p, 1, 1, false);
        assert_eq!(o.event, Event::WriteMiss(MissContext::CleanElsewhere { copies: 1 }));
        assert_eq!(o.control_messages, 1, "broadcast bit clear: single directed invalidate");
        assert!(!o.used_broadcast);
        p.check_invariants().unwrap();
    }

    #[test]
    fn overflow_sets_broadcast_bit_and_later_broadcasts() {
        let mut p = DirB::dir1b(4);
        read(&mut p, 0, 1, true);
        read(&mut p, 1, 1, false); // overflows the single pointer
        read(&mut p, 2, 1, false);
        let o = write(&mut p, 3, 1, false);
        assert_eq!(o.event, Event::WriteMiss(MissContext::CleanElsewhere { copies: 3 }));
        assert!(o.used_broadcast, "broadcast bit was set");
        assert_eq!(o.control_messages, 0);
        assert_eq!(p.holders(b(1)).sole(), Some(CacheId::new(3)));
        p.check_invariants().unwrap();
    }

    #[test]
    fn dir2b_covers_two_sharers_without_broadcast() {
        let mut p = DirB::new(2, 4);
        read(&mut p, 0, 1, true);
        read(&mut p, 1, 1, false);
        let o = write(&mut p, 0, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::CleanShared { others: 1 }));
        assert!(!o.used_broadcast);
        assert_eq!(o.control_messages, 1);
        p.check_invariants().unwrap();
    }

    #[test]
    fn dirty_flush_is_always_directed() {
        let mut p = DirB::dir1b(4);
        write(&mut p, 0, 1, true);
        let o = read(&mut p, 1, 1, false);
        assert_eq!(o.event, Event::ReadMiss(MissContext::DirtyElsewhere));
        assert!(o.write_back);
        assert!(!o.used_broadcast, "dirty blocks always have a pointer");
        assert_eq!(o.control_messages, 1);
        p.check_invariants().unwrap();
    }

    #[test]
    fn write_resets_broadcast_bit() {
        let mut p = DirB::dir1b(4);
        read(&mut p, 0, 1, true);
        read(&mut p, 1, 1, false);
        write(&mut p, 2, 1, false); // broadcast invalidate, now pointed dirty
        let o = read(&mut p, 3, 1, false);
        assert_eq!(o.event, Event::ReadMiss(MissContext::DirtyElsewhere));
        let o = write(&mut p, 3, 1, false);
        // Only caches 2,3 hold it (clean); pointer tracked cache 2... pointer
        // overflowed when 3 joined, so broadcast.
        assert!(o.used_broadcast || o.control_messages > 0);
        p.check_invariants().unwrap();
    }

    #[test]
    fn exclusive_write_hit_quiet_delivery() {
        let mut p = DirB::dir1b(4);
        read(&mut p, 0, 1, true);
        let o = write(&mut p, 0, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::CleanExclusive));
        assert_eq!(o.control_messages, 0);
        assert!(!o.used_broadcast);
    }

    #[test]
    #[should_panic(expected = "Dir0B")]
    fn zero_pointers_rejected() {
        let _ = DirB::new(0, 4);
    }
}

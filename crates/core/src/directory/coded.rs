//! §6 coded-set directory: a `2·log₂(n)`-bit superset code.
//!
//! "The number of bits in the main memory directory can be reduced by
//! storing a simple code representing a set of caches, which is a superset
//! of all caches with a copy of the block. For example, consider storing a
//! word with d digits where each digit takes on one of three values: 0, 1,
//! and *both*. ... If i digits are coded both, then 2^i caches are denoted.
//! ... Each digit can be coded in 2 bits, thus requiring 2 log(n) bits in a
//! system with n caches."
//!
//! Invalidations are *limited broadcasts*: directed messages to every cache
//! in the coded set (a superset of the true sharers), so some messages are
//! wasted — the price of the compact encoding. The implementation counts
//! those wasted messages so the §6 experiment can report the overshoot.

use crate::event::{Event, EvictOutcome, MissContext, Outcome, WriteHitContext};
use crate::protocol::{Protocol, ProtocolKind};
use dircc_cache::{BlockMap, CacheArray};
use dircc_types::{AccessKind, BlockAddr, CacheId, CacheIdSet};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Copy {
    Clean,
    Dirty,
}

/// The trit code: cache indices matching `value` on every digit outside
/// `both_mask`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Code {
    value: u16,
    both_mask: u16,
}

impl Code {
    fn singleton(c: CacheId) -> Self {
        Code { value: c.raw(), both_mask: 0 }
    }

    /// Widens the code to include `c`: digits that differ become `both`.
    fn widen(&mut self, c: CacheId) {
        self.both_mask |= self.value ^ c.raw();
    }

    fn contains(&self, c: CacheId) -> bool {
        (self.value ^ c.raw()) & !self.both_mask == 0
    }

    /// Enumerates the denoted caches that exist in an `n`-cache machine.
    fn members(&self, n: usize) -> CacheIdSet {
        (0..n as u16).map(CacheId::new).filter(|c| self.contains(*c)).collect()
    }
}

#[derive(Debug, Clone)]
struct Entry {
    code: Code,
    dirty: bool,
}

/// The coded-set limited-broadcast directory protocol (`DirCodedNB`).
///
/// ```
/// use dircc_core::directory::CodedSet;
/// use dircc_core::Protocol;
///
/// assert_eq!(CodedSet::new(8).name(), "DirCodedNB");
/// ```
#[derive(Debug, Clone)]
pub struct CodedSet {
    caches: CacheArray<Copy>,
    dir: BlockMap<Entry>,
    wasted_invalidates: u64,
}

impl CodedSet {
    /// Creates a coded-set directory over `n_caches` caches.
    ///
    /// # Panics
    ///
    /// Panics if `n_caches` is out of `1..=64`.
    pub fn new(n_caches: usize) -> Self {
        CodedSet { caches: CacheArray::new(n_caches), dir: BlockMap::new(), wasted_invalidates: 0 }
    }

    /// Invalidation messages sent to caches that did not actually hold the
    /// block (the superset overshoot of §6).
    pub fn wasted_invalidates(&self) -> u64 {
        self.wasted_invalidates
    }

    fn classify_miss(&self, block: BlockAddr, first_ref: bool) -> MissContext {
        let holders = self.caches.holders(block);
        if holders.is_empty() {
            if first_ref {
                MissContext::FirstRef
            } else {
                MissContext::MemoryOnly
            }
        } else if self.dir.get(block).is_some_and(|e| e.dirty) {
            MissContext::DirtyElsewhere
        } else {
            MissContext::CleanElsewhere { copies: holders.len() as u32 }
        }
    }

    /// Sends directed invalidates to the whole coded set (minus the
    /// requester). Returns the number of messages sent.
    fn invalidate_coded(&mut self, block: BlockAddr, except: Option<CacheId>) -> u32 {
        let Some(entry) = self.dir.get(block) else { return 0 };
        let mut targets = entry.code.members(self.caches.num_caches());
        if let Some(c) = except {
            targets.remove(c);
        }
        let holders = self.caches.holders(block);
        let wasted = targets.difference(holders).len() as u64;
        self.wasted_invalidates += wasted;
        for t in targets.iter() {
            self.caches.remove(t, block);
        }
        targets.len() as u32
    }

    fn read(&mut self, cache: CacheId, block: BlockAddr, first_ref: bool) -> Outcome {
        if self.caches.state(cache, block).is_some() {
            return Outcome::quiet(Event::ReadHit);
        }
        let ctx = self.classify_miss(block, first_ref);
        let mut out = Outcome::quiet(Event::ReadMiss(ctx));
        if ctx == MissContext::DirtyElsewhere {
            // A dirty entry's code is exact (a singleton set by
            // construction), so the flush request is one directed message.
            let owner = self.caches.holders(block).sole().expect("dirty has one holder");
            out.control_messages += 1;
            out = out.with_write_back();
            self.caches.set(owner, block, Copy::Clean);
            self.dir.get_mut(block).expect("entry exists").dirty = false;
        }
        match self.dir.get_mut(block) {
            Some(entry) => entry.code.widen(cache),
            None => {
                self.dir.insert(block, Entry { code: Code::singleton(cache), dirty: false });
            }
        }
        self.caches.set(cache, block, Copy::Clean);
        out
    }

    fn write(&mut self, cache: CacheId, block: BlockAddr, first_ref: bool) -> Outcome {
        match self.caches.state(cache, block) {
            Some(Copy::Dirty) => Outcome::quiet(Event::WriteHit(WriteHitContext::Dirty)),
            Some(Copy::Clean) => {
                let others = self.caches.other_holders(cache, block);
                let event = if others.is_empty() {
                    Event::WriteHit(WriteHitContext::CleanExclusive)
                } else {
                    Event::WriteHit(WriteHitContext::CleanShared { others: others.len() as u32 })
                };
                let mut out = Outcome::quiet(event);
                out.control_messages += self.invalidate_coded(block, Some(cache));
                self.dir.insert(block, Entry { code: Code::singleton(cache), dirty: true });
                self.caches.set(cache, block, Copy::Dirty);
                out
            }
            None => {
                let ctx = self.classify_miss(block, first_ref);
                let mut out = Outcome::quiet(Event::WriteMiss(ctx));
                if ctx == MissContext::DirtyElsewhere {
                    out = out.with_write_back();
                    // Single directed flush+invalidate to the exact owner.
                    out.control_messages += 1;
                    self.caches.remove_all_except(block, None);
                } else {
                    out.control_messages += self.invalidate_coded(block, None);
                }
                self.dir.insert(block, Entry { code: Code::singleton(cache), dirty: true });
                self.caches.set(cache, block, Copy::Dirty);
                out
            }
        }
    }
}

impl Protocol for CodedSet {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::CodedSet
    }

    fn num_caches(&self) -> usize {
        self.caches.num_caches()
    }

    fn access(
        &mut self,
        cache: CacheId,
        kind: AccessKind,
        block: BlockAddr,
        first_ref: bool,
    ) -> Outcome {
        match kind {
            AccessKind::Read => self.read(cache, block, first_ref),
            AccessKind::Write => self.write(cache, block, first_ref),
            AccessKind::InstrFetch => panic!("instruction fetches never reach the protocol"),
        }
    }

    fn evict(&mut self, cache: CacheId, block: BlockAddr) -> EvictOutcome {
        let Some(copy) = self.caches.remove(cache, block) else {
            return EvictOutcome::SILENT;
        };
        if self.caches.holders(block).is_empty() {
            self.dir.remove(block);
        } else if copy == Copy::Dirty {
            self.dir.get_mut(block).expect("entry exists").dirty = false;
        }
        if copy == Copy::Dirty {
            EvictOutcome::WRITE_BACK
        } else {
            // The trit code remains a superset of the shrunken holder set.
            EvictOutcome::SILENT
        }
    }

    fn reserve_blocks(&mut self, blocks: usize) {
        self.caches.reserve_blocks(blocks);
        self.dir.reserve_blocks(blocks);
    }

    fn holders(&self, block: BlockAddr) -> CacheIdSet {
        self.caches.holders(block)
    }

    fn check_invariants(&self) -> Result<(), String> {
        self.caches.check_residency()?;
        for (block, entry) in self.dir.iter() {
            let holders = self.caches.holders(block);
            let coded = entry.code.members(self.caches.num_caches());
            if !holders.is_subset_of(coded) {
                return Err(format!("{block}: holders {holders} not covered by coded set {coded}"));
            }
            if entry.dirty {
                if holders.len() != 1 {
                    return Err(format!("{block}: dirty with {} holders", holders.len()));
                }
                if entry.code.both_mask != 0 {
                    return Err(format!("{block}: dirty entry must have an exact code"));
                }
                let owner = holders.sole().expect("one holder");
                if self.caches.state(owner, block) != Some(&Copy::Dirty) {
                    return Err(format!("{block}: dirty entry but clean copy"));
                }
            }
        }
        for (block, holders) in self.caches.iter_blocks() {
            if !holders.is_empty() && !self.dir.contains_key(block) {
                return Err(format!("{block}: cached without directory entry"));
            }
        }
        Ok(())
    }

    fn encode_state(&self, out: &mut Vec<u64>) {
        self.caches.encode_states(out, |s| u64::from(*s == Copy::Dirty));
        // `wasted_invalidates` is a monotonic statistic, not state.
        out.push(self.dir.len() as u64);
        for (block, entry) in self.dir.iter() {
            out.push(block.index());
            out.push(u64::from(entry.dirty));
            // Value bits under a 'both' digit are don't-cares; mask them
            // so equivalent codes encode equally.
            out.push(u64::from(entry.code.value & !entry.code.both_mask));
            out.push(u64::from(entry.code.both_mask));
        }
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }
    fn read(p: &mut CodedSet, cache: u16, blk: u64, first: bool) -> Outcome {
        p.access(CacheId::new(cache), AccessKind::Read, b(blk), first)
    }
    fn write(p: &mut CodedSet, cache: u16, blk: u64, first: bool) -> Outcome {
        p.access(CacheId::new(cache), AccessKind::Write, b(blk), first)
    }

    #[test]
    fn code_widening_denotes_supersets() {
        let mut code = Code::singleton(CacheId::new(0b0101));
        assert_eq!(code.members(16).len(), 1);
        code.widen(CacheId::new(0b0100)); // differs in one digit
        assert_eq!(code.members(16).len(), 2);
        code.widen(CacheId::new(0b0001)); // another digit goes 'both'
        assert_eq!(code.members(16).len(), 4, "two both-digits denote 4 caches");
        assert!(code.contains(CacheId::new(0b0000)), "superset includes non-sharers");
    }

    #[test]
    fn single_sharer_invalidation_is_exact() {
        let mut p = CodedSet::new(8);
        read(&mut p, 3, 1, true);
        let o = write(&mut p, 5, 1, false);
        assert_eq!(o.event, Event::WriteMiss(MissContext::CleanElsewhere { copies: 1 }));
        assert_eq!(o.control_messages, 1, "exact code for one sharer");
        assert_eq!(p.wasted_invalidates(), 0);
        p.check_invariants().unwrap();
    }

    #[test]
    fn superset_invalidation_wastes_messages() {
        let mut p = CodedSet::new(8);
        // Sharers 0b000 and 0b011 widen the code to {000,001,010,011}.
        read(&mut p, 0, 1, true);
        read(&mut p, 3, 1, false);
        let o = write(&mut p, 7, 1, false);
        assert_eq!(o.event, Event::WriteMiss(MissContext::CleanElsewhere { copies: 2 }));
        assert_eq!(o.control_messages, 4, "limited broadcast to the coded superset");
        assert_eq!(p.wasted_invalidates(), 2);
        assert_eq!(p.holders(b(1)).sole(), Some(CacheId::new(7)));
        p.check_invariants().unwrap();
    }

    #[test]
    fn writer_excluded_from_its_own_invalidation() {
        let mut p = CodedSet::new(8);
        read(&mut p, 0, 1, true);
        read(&mut p, 1, 1, false);
        let o = write(&mut p, 0, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::CleanShared { others: 1 }));
        assert_eq!(o.control_messages, 1, "only cache 1 needs the message");
        p.check_invariants().unwrap();
    }

    #[test]
    fn dirty_flush_uses_exact_pointer() {
        let mut p = CodedSet::new(8);
        write(&mut p, 2, 1, true);
        let o = read(&mut p, 6, 1, false);
        assert_eq!(o.event, Event::ReadMiss(MissContext::DirtyElsewhere));
        assert_eq!(o.control_messages, 1);
        assert!(o.write_back);
        assert_eq!(p.holders(b(1)).len(), 2);
        p.check_invariants().unwrap();
    }

    #[test]
    fn members_respects_machine_size() {
        let mut code = Code::singleton(CacheId::new(2));
        code.widen(CacheId::new(6)); // both on digit 2 ⇒ {2, 6}
        assert_eq!(code.members(4).len(), 1, "cache 6 doesn't exist in a 4-cache machine");
    }

    #[test]
    fn invariants_hold_over_a_scramble() {
        let mut p = CodedSet::new(8);
        for i in 0..200u64 {
            let cache = (i * 7 % 8) as u16;
            let blk = i % 5;
            if i % 3 == 0 {
                write(&mut p, cache, blk, i < 5);
            } else {
                read(&mut p, cache, blk, i < 5);
            }
            p.check_invariants().unwrap();
        }
    }
}

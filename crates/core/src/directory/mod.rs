//! Directory-based coherence protocols.
//!
//! "Directory-based protocols keep a separate directory associated with
//! main memory that stores the state of each block of main memory."
//!
//! The implementations here cover the paper's whole `Dir_i_X`
//! classification plus the prior schemes it reviews:
//!
//! | Scheme | Paper classification | Type |
//! |---|---|---|
//! | [`DirNb::dir1nb`] | `Dir1NB` | one pointer, no broadcast |
//! | [`DirNb::new`]`(i, n)` | `DiriNB` | `i` pointers, pointer eviction |
//! | [`DirNb::full_map`] | `DirnNB` (Censier-Feautrier) | full map |
//! | [`Dir0B`] | `Dir0B` (Archibald-Baer) | two bits, broadcast |
//! | [`DirB::dir1b`] | `Dir1B` | pointer + broadcast bit |
//! | [`DirB::new`]`(i, n)` | `DiriB` | pointers + broadcast bit |
//! | [`CodedSet`] | §6 coded set | trit-coded superset |
//! | [`Tang`] | `DirnNB` organized as duplicate tags | full map |
//! | [`YenFu`] | `DirnNB` + single bits | full map |

mod coded;
mod dir0b;
mod dir_b;
mod dir_nb;
mod tang;
mod yenfu;

pub use coded::CodedSet;
pub use dir0b::Dir0B;
pub use dir_b::DirB;
pub use dir_nb::DirNb;
pub use tang::Tang;
pub use yenfu::YenFu;

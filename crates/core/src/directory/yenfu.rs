//! The Yen & Fu single-bit refinement of the Censier-Feautrier full map.
//!
//! "The central directory is unchanged, but in addition to the valid and
//! dirty bits, a flag called the *single* bit is associated with each block
//! in the caches. A cache block's single bit is set if and only if that
//! cache is the only one in the system that contains the block. This saves
//! having to complete a directory access before writing to a clean block
//! that is not cached elsewhere. The major drawback of this scheme is that
//! extra bus bandwidth is consumed to keep the single bits updated."
//!
//! Implementation: state transitions delegate to the full map
//! ([`DirNb`]); this wrapper adds the single-bit maintenance traffic (one
//! bus message whenever a block's sole holder gains a companion, clearing
//! the old holder's single bit). The *benefit* — no directory check on a
//! write hit to a clean exclusive block — is a cost-model property handled
//! by the bus crate's Yen-Fu schema.

use super::dir_nb::DirNb;
use crate::event::{Event, MissContext, Outcome};
use crate::protocol::{Protocol, ProtocolKind};
use dircc_types::{AccessKind, BlockAddr, CacheId, CacheIdSet};

/// The Yen & Fu full-map directory protocol with per-cache single bits.
///
/// ```
/// use dircc_core::directory::YenFu;
/// use dircc_core::Protocol;
///
/// assert_eq!(YenFu::new(4).name(), "YenFu");
/// ```
#[derive(Debug, Clone)]
pub struct YenFu {
    inner: DirNb,
}

impl YenFu {
    /// Creates a Yen-Fu protocol over `n_caches` caches.
    ///
    /// # Panics
    ///
    /// Panics if `n_caches` is out of `1..=64`.
    pub fn new(n_caches: usize) -> Self {
        YenFu { inner: DirNb::full_map(n_caches) }
    }

    /// Returns `true` if `cache`'s copy of `block` would have its single
    /// bit set (it is the sole holder).
    pub fn single_bit(&self, cache: CacheId, block: BlockAddr) -> bool {
        self.inner.holders(block).sole() == Some(cache)
    }
}

impl Protocol for YenFu {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::YenFu
    }

    fn num_caches(&self) -> usize {
        self.inner.num_caches()
    }

    fn access(
        &mut self,
        cache: CacheId,
        kind: AccessKind,
        block: BlockAddr,
        first_ref: bool,
    ) -> Outcome {
        let holders_before = self.inner.holders(block);
        let mut out = self.inner.access(cache, kind, block, first_ref);
        // Single-bit maintenance: when a clean sole holder gains a
        // companion, a bus message clears the old holder's single bit. A
        // dirty sole holder is reached by the flush request anyway, so no
        // extra message is charged for that transition.
        if matches!(out.event, Event::ReadMiss(MissContext::CleanElsewhere { copies: 1 }))
            && holders_before.sole().is_some()
        {
            out.aux_messages += 1;
        }
        out
    }

    fn evict(&mut self, cache: CacheId, block: BlockAddr) -> crate::event::EvictOutcome {
        self.inner.evict(cache, block)
    }

    fn reserve_blocks(&mut self, blocks: usize) {
        self.inner.reserve_blocks(blocks);
    }

    fn holders(&self, block: BlockAddr) -> CacheIdSet {
        self.inner.holders(block)
    }

    fn check_invariants(&self) -> Result<(), String> {
        self.inner.check_invariants()
    }

    fn encode_state(&self, out: &mut Vec<u64>) {
        // The single bit is derived from the holder set, so the full-map
        // state is the complete state.
        self.inner.encode_state(out);
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::WriteHitContext;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }
    fn read(p: &mut YenFu, cache: u16, blk: u64, first: bool) -> Outcome {
        p.access(CacheId::new(cache), AccessKind::Read, b(blk), first)
    }
    fn write(p: &mut YenFu, cache: u16, blk: u64, first: bool) -> Outcome {
        p.access(CacheId::new(cache), AccessKind::Write, b(blk), first)
    }

    #[test]
    fn single_bit_reflects_sole_ownership() {
        let mut p = YenFu::new(4);
        read(&mut p, 0, 1, true);
        assert!(p.single_bit(CacheId::new(0), b(1)));
        read(&mut p, 1, 1, false);
        assert!(!p.single_bit(CacheId::new(0), b(1)));
        assert!(!p.single_bit(CacheId::new(1), b(1)));
    }

    #[test]
    fn second_clean_sharer_costs_a_single_bit_update() {
        let mut p = YenFu::new(4);
        read(&mut p, 0, 1, true);
        let o = read(&mut p, 1, 1, false);
        assert_eq!(o.aux_messages, 1, "old sole holder's single bit cleared");
        let o = read(&mut p, 2, 1, false);
        assert_eq!(o.aux_messages, 0, "no single bit left to clear");
    }

    #[test]
    fn dirty_handoff_needs_no_extra_single_bit_message() {
        let mut p = YenFu::new(4);
        write(&mut p, 0, 1, true);
        let o = read(&mut p, 1, 1, false);
        assert_eq!(o.aux_messages, 0, "flush request reaches the owner anyway");
        assert!(o.write_back);
    }

    #[test]
    fn state_transitions_match_full_map() {
        let mut yf = YenFu::new(4);
        let mut fm = DirNb::full_map(4);
        let script: &[(u16, AccessKind, u64, bool)] = &[
            (0, AccessKind::Read, 1, true),
            (1, AccessKind::Read, 1, false),
            (2, AccessKind::Write, 1, false),
            (0, AccessKind::Read, 1, false),
            (0, AccessKind::Write, 1, false),
        ];
        for &(cache, kind, blk, first) in script {
            let a = yf.access(CacheId::new(cache), kind, b(blk), first);
            let c = fm.access(CacheId::new(cache), kind, b(blk), first);
            assert_eq!(a.event, c.event, "events match the full map");
            assert_eq!(yf.holders(b(blk)), fm.holders(b(blk)));
        }
        yf.check_invariants().unwrap();
    }

    #[test]
    fn exclusive_clean_write_hit_event_is_distinguishable() {
        // The cost benefit (skip the directory check) requires the event to
        // be classified as CleanExclusive so the schema can zero its cost.
        let mut p = YenFu::new(4);
        read(&mut p, 0, 1, true);
        let o = write(&mut p, 0, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::CleanExclusive));
    }
}

//! Directory storage-overhead accounting.
//!
//! §6's motivation for limited pointers and coded sets is directory *size*:
//! "the directory size increases in proportion to the number of processors"
//! for a full map, while "each digit can be coded in 2 bits, thus requiring
//! 2 log(n) bits in a system with n caches". This module computes the
//! per-block directory bits of every scheme in the taxonomy, so the
//! size/performance trade-off the paper describes can be tabulated.

use crate::protocol::ProtocolKind;

/// Returns the directory bits each scheme stores **per memory block**, for
/// an `n_caches`-processor machine.
///
/// Conventions (matching the schemes' descriptions in the paper):
///
/// * `DirnNB` (full map): one valid bit per cache plus a dirty bit.
/// * `DiriNB` / `DiriB`: `i` pointers of ⌈log₂ n⌉ bits, a dirty bit, and
///   (for `B`) the broadcast bit.
/// * `Dir0B`: exactly two bits (the four Archibald-Baer states).
/// * Coded set: `2·⌈log₂ n⌉` bits (one trit per address digit) plus a
///   dirty bit.
/// * Tang: a duplicate of every cache's tag store — modelled as `n` copies
///   of (tag + dirty) per *cache block*; expressed per memory block it is
///   the same `n·(tag_bits + 1)` bound the paper criticizes.
/// * Yen-Fu: full map plus one single-bit per cached copy (charged to the
///   caches, not the directory; directory side equals the full map).
/// * Snoopy schemes: zero directory bits (state lives in the caches).
///
/// `tag_bits` is only used by Tang (the size of a duplicated tag entry).
///
/// ```
/// use dircc_core::{directory_bits_per_block, ProtocolKind};
///
/// assert_eq!(directory_bits_per_block(ProtocolKind::Dir0B, 64, 20), 2);
/// assert_eq!(directory_bits_per_block(ProtocolKind::DirNb { pointers: 64 }, 64, 20), 65);
/// assert_eq!(directory_bits_per_block(ProtocolKind::CodedSet, 64, 20), 13);
/// ```
pub fn directory_bits_per_block(kind: ProtocolKind, n_caches: usize, tag_bits: u32) -> u64 {
    let log_n = (usize::BITS - (n_caches.max(2) - 1).leading_zeros()) as u64;
    match kind {
        ProtocolKind::DirNb { pointers } if pointers as usize >= n_caches => {
            // Full map: n valid bits + dirty.
            n_caches as u64 + 1
        }
        ProtocolKind::DirNb { pointers } => u64::from(pointers) * log_n + 1,
        ProtocolKind::DirB { pointers } => u64::from(pointers) * log_n + 2,
        ProtocolKind::Dir0B => 2,
        ProtocolKind::CodedSet => 2 * log_n + 1,
        ProtocolKind::Tang => n_caches as u64 * (u64::from(tag_bits) + 1),
        ProtocolKind::YenFu => n_caches as u64 + 1,
        ProtocolKind::Wti
        | ProtocolKind::Dragon
        | ProtocolKind::Berkeley
        | ProtocolKind::WriteOnce
        | ProtocolKind::Firefly
        | ProtocolKind::Mesi => 0,
    }
}

/// Directory storage as a fraction of the memory it describes, for
/// `block_bits` data bits per block (the paper's 16-byte blocks are 128
/// bits).
pub fn directory_overhead_fraction(
    kind: ProtocolKind,
    n_caches: usize,
    tag_bits: u32,
    block_bits: u64,
) -> f64 {
    directory_bits_per_block(kind, n_caches, tag_bits) as f64 / block_bits as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_map_grows_linearly_with_caches() {
        let at = |n| directory_bits_per_block(ProtocolKind::DirNb { pointers: 999 }, n, 20);
        assert_eq!(at(4), 5);
        assert_eq!(at(16), 17);
        assert_eq!(at(64), 65);
    }

    #[test]
    fn limited_pointers_grow_logarithmically() {
        let dir2 = |n| directory_bits_per_block(ProtocolKind::DirNb { pointers: 2 }, n, 20);
        assert_eq!(dir2(4), 5); // 2×2 + 1
        assert_eq!(dir2(16), 9); // 2×4 + 1
        assert_eq!(dir2(64), 13); // 2×6 + 1
                                  // Dir1B: one pointer + dirty + broadcast bit.
        assert_eq!(directory_bits_per_block(ProtocolKind::DirB { pointers: 1 }, 64, 20), 8);
    }

    #[test]
    fn coded_set_matches_the_papers_2_log_n() {
        // "thus requiring 2 log(n) bits in a system with n caches" (+dirty).
        assert_eq!(directory_bits_per_block(ProtocolKind::CodedSet, 16, 20), 9);
        assert_eq!(directory_bits_per_block(ProtocolKind::CodedSet, 64, 20), 13);
    }

    #[test]
    fn dir0b_is_always_two_bits() {
        for n in [2, 4, 64] {
            assert_eq!(directory_bits_per_block(ProtocolKind::Dir0B, n, 20), 2);
        }
    }

    #[test]
    fn tang_duplicates_tag_stores() {
        assert_eq!(directory_bits_per_block(ProtocolKind::Tang, 4, 20), 84);
    }

    #[test]
    fn snoopy_schemes_have_no_directory() {
        for kind in
            [ProtocolKind::Wti, ProtocolKind::Dragon, ProtocolKind::Berkeley, ProtocolKind::Mesi]
        {
            assert_eq!(directory_bits_per_block(kind, 64, 20), 0);
        }
    }

    #[test]
    fn overhead_fraction_for_paper_blocks() {
        // Full map at 64 caches on 128-bit blocks: 65/128 ≈ 51% overhead —
        // the §6 problem in one number.
        let f = directory_overhead_fraction(ProtocolKind::DirNb { pointers: 64 }, 64, 20, 128);
        assert!((f - 65.0 / 128.0).abs() < 1e-12);
        // The coded set cuts it to ~10%.
        let c = directory_overhead_fraction(ProtocolKind::CodedSet, 64, 20, 128);
        assert!(c < 0.11);
    }

    #[test]
    fn ordering_at_scale_matches_section_6() {
        // At 64 caches: Dir0B < coded < limited-2 < full map < Tang.
        let n = 64;
        let bits = |k| directory_bits_per_block(k, n, 20);
        assert!(bits(ProtocolKind::Dir0B) < bits(ProtocolKind::CodedSet));
        assert!(bits(ProtocolKind::CodedSet) <= bits(ProtocolKind::DirNb { pointers: 2 }));
        assert!(
            bits(ProtocolKind::DirNb { pointers: 2 })
                < bits(ProtocolKind::DirNb { pointers: n as u32 })
        );
        assert!(bits(ProtocolKind::DirNb { pointers: n as u32 }) < bits(ProtocolKind::Tang));
    }
}

//! # dircc-core
//!
//! Cache-coherence protocols from *"An Evaluation of Directory Schemes for
//! Cache Coherence"* (Agarwal, Simoni, Hennessy, Horowitz — ISCA 1988).
//!
//! The paper classifies directory schemes as **Dir_i_X**: *i* cache
//! pointers per directory entry, with (`B`) or without (`NB`) a broadcast
//! fallback. This crate implements that whole design space plus the snoopy
//! protocols the paper compares against:
//!
//! * [`directory::DirNb`] — `Dir1NB`, `DiriNB`, `DirnNB` (Censier-Feautrier)
//! * [`directory::Dir0B`] — Archibald-Baer two-bit broadcast scheme
//! * [`directory::DirB`] — `Dir1B` / `DiriB` limited pointers + broadcast bit
//! * [`directory::CodedSet`] — §6 coded-set limited broadcast
//! * [`directory::Tang`], [`directory::YenFu`] — the reviewed prior schemes
//! * [`snoopy::Wti`], [`snoopy::Dragon`], [`snoopy::Berkeley`]
//!
//! Each protocol consumes data references one at a time (via
//! [`Protocol::access`]) and returns an [`Outcome`]: the event
//! classification (Table 4's rows) plus everything that costs bus cycles.
//! Event frequencies accumulate in [`EventCounters`]; the `dircc-bus`
//! crate prices outcomes into bus cycles; `dircc-sim` drives traces.
//!
//! # Examples
//!
//! ```
//! use dircc_core::{build, ProtocolKind};
//! use dircc_types::{AccessKind, BlockAddr, CacheId};
//!
//! let mut p = build(ProtocolKind::Dir0B, 4);
//! let b = BlockAddr::from_index(9);
//! let o = p.access(CacheId::new(0), AccessKind::Write, b, true);
//! assert!(o.event.is_first_ref());
//! assert_eq!(p.holders(b).len(), 1);
//! p.check_invariants().unwrap();
//! ```

pub mod counters;
pub mod directory;
pub mod event;
pub mod protocol;
pub mod snoopy;
pub mod storage;

pub use counters::{EventCounters, MAX_HISTOGRAM};
pub use event::{CoherenceStyle, Event, MissContext, Outcome, WriteHitContext};
pub use protocol::{Protocol, ProtocolKind};
pub use storage::{directory_bits_per_block, directory_overhead_fraction};

/// Builds a protocol instance from its taxonomy point.
///
/// # Panics
///
/// Panics on invalid parameters: `DirNb`/`DirB` with zero pointers, or
/// `n_caches` outside `1..=64`.
///
/// ```
/// # use dircc_core::{build, ProtocolKind};
/// let p = build(ProtocolKind::DirB { pointers: 2 }, 8);
/// assert_eq!(p.name(), "Dir2B");
/// ```
pub fn build(kind: ProtocolKind, n_caches: usize) -> Box<dyn Protocol> {
    match kind {
        ProtocolKind::DirNb { pointers } => Box::new(directory::DirNb::new(pointers, n_caches)),
        ProtocolKind::Dir0B => Box::new(directory::Dir0B::new(n_caches)),
        ProtocolKind::DirB { pointers } => Box::new(directory::DirB::new(pointers, n_caches)),
        ProtocolKind::CodedSet => Box::new(directory::CodedSet::new(n_caches)),
        ProtocolKind::Tang => Box::new(directory::Tang::new(n_caches)),
        ProtocolKind::YenFu => Box::new(directory::YenFu::new(n_caches)),
        ProtocolKind::Wti => Box::new(snoopy::Wti::new(n_caches)),
        ProtocolKind::Dragon => Box::new(snoopy::Dragon::new(n_caches)),
        ProtocolKind::Berkeley => Box::new(snoopy::Berkeley::new(n_caches)),
        ProtocolKind::WriteOnce => Box::new(snoopy::WriteOnce::new(n_caches)),
        ProtocolKind::Firefly => Box::new(snoopy::Firefly::new(n_caches)),
        ProtocolKind::Mesi => Box::new(snoopy::Mesi::new(n_caches)),
    }
}

/// As [`build`], but pre-sizes every per-block table for a replay that
/// will touch `blocks` distinct (dense) blocks — pass the interner's
/// count to avoid rehash/regrow churn in the replay hot loop.
pub fn build_sized(kind: ProtocolKind, n_caches: usize, blocks: usize) -> Box<dyn Protocol> {
    let mut p = build(kind, n_caches);
    p.reserve_blocks(blocks);
    p
}

/// A computation generic over the *concrete* protocol type.
///
/// [`dispatch`] resolves a [`ProtocolKind`] to its concrete type exactly
/// once and hands the visitor a sized instance, so `visit::<P>` is
/// monomorphized per scheme: a replay loop written inside `visit` calls
/// [`Protocol::access`] statically — inlinable, no per-reference vtable
/// indirection — while [`build`]'s `Box<dyn Protocol>` path stays
/// available as the dynamic reference implementation.
pub trait ProtocolVisitor {
    /// What the computation returns.
    type Output;

    /// Runs the computation over a concrete protocol instance.
    fn visit<P: Protocol>(self, protocol: P) -> Self::Output;
}

/// Resolves `kind` to its concrete protocol type (the same 12-arm mapping
/// as [`build`]) and runs `visitor` over a fresh instance — the
/// monomorphizing twin of [`build`].
///
/// # Panics
///
/// As [`build`].
pub fn dispatch<V: ProtocolVisitor>(kind: ProtocolKind, n_caches: usize, visitor: V) -> V::Output {
    match kind {
        ProtocolKind::DirNb { pointers } => {
            visitor.visit(directory::DirNb::new(pointers, n_caches))
        }
        ProtocolKind::Dir0B => visitor.visit(directory::Dir0B::new(n_caches)),
        ProtocolKind::DirB { pointers } => visitor.visit(directory::DirB::new(pointers, n_caches)),
        ProtocolKind::CodedSet => visitor.visit(directory::CodedSet::new(n_caches)),
        ProtocolKind::Tang => visitor.visit(directory::Tang::new(n_caches)),
        ProtocolKind::YenFu => visitor.visit(directory::YenFu::new(n_caches)),
        ProtocolKind::Wti => visitor.visit(snoopy::Wti::new(n_caches)),
        ProtocolKind::Dragon => visitor.visit(snoopy::Dragon::new(n_caches)),
        ProtocolKind::Berkeley => visitor.visit(snoopy::Berkeley::new(n_caches)),
        ProtocolKind::WriteOnce => visitor.visit(snoopy::WriteOnce::new(n_caches)),
        ProtocolKind::Firefly => visitor.visit(snoopy::Firefly::new(n_caches)),
        ProtocolKind::Mesi => visitor.visit(snoopy::Mesi::new(n_caches)),
    }
}

/// Pre-sizes the instance via [`Protocol::reserve_blocks`] before
/// delegating to the inner visitor — [`dispatch_sized`]'s adapter.
struct SizedVisitor<V> {
    blocks: usize,
    inner: V,
}

impl<V: ProtocolVisitor> ProtocolVisitor for SizedVisitor<V> {
    type Output = V::Output;

    fn visit<P: Protocol>(self, mut protocol: P) -> V::Output {
        protocol.reserve_blocks(self.blocks);
        self.inner.visit(protocol)
    }
}

/// As [`dispatch`], but pre-sizes every per-block table for `blocks`
/// distinct (dense) blocks — the monomorphizing twin of [`build_sized`].
///
/// # Panics
///
/// As [`build`].
pub fn dispatch_sized<V: ProtocolVisitor>(
    kind: ProtocolKind,
    n_caches: usize,
    blocks: usize,
    visitor: V,
) -> V::Output {
    dispatch(kind, n_caches, SizedVisitor { blocks, inner: visitor })
}

/// Per-shard construction for block-sharded replay: one protocol instance
/// per shard, each with its per-block tables (`CacheArray`, `BlockMap`,
/// `BlockSet`, directory entries) sized via [`Protocol::reserve_blocks`]
/// for that shard's blocks only. Shards see disjoint (shard-local dense)
/// block id spaces, so the instances together hold exactly the state one
/// unsharded instance would.
///
/// `shard_blocks[s]` is the distinct-block count of shard `s` (from
/// `ShardedStream::shard_blocks` in `dircc-trace`).
///
/// # Panics
///
/// As [`build`].
pub fn split_shards(
    kind: ProtocolKind,
    n_caches: usize,
    shard_blocks: &[usize],
) -> Vec<Box<dyn Protocol>> {
    shard_blocks.iter().map(|&blocks| build_sized(kind, n_caches, blocks)).collect()
}

/// The four schemes of the paper's main evaluation (§3), in its order:
/// `Dir1NB`, `WTI`, `Dir0B`, `Dragon`.
pub fn paper_schemes(n_caches: usize) -> Vec<Box<dyn Protocol>> {
    vec![
        build(ProtocolKind::DirNb { pointers: 1 }, n_caches),
        build(ProtocolKind::Wti, n_caches),
        build(ProtocolKind::Dir0B, n_caches),
        build(ProtocolKind::Dragon, n_caches),
    ]
}

/// Every protocol kind this crate implements, instantiated for `n_caches`
/// (limited-pointer schemes at representative points `i ∈ {1, 2}`).
pub fn all_schemes(n_caches: usize) -> Vec<Box<dyn Protocol>> {
    let mut v = vec![
        build(ProtocolKind::DirNb { pointers: 1 }, n_caches),
        build(ProtocolKind::DirNb { pointers: 2 }, n_caches),
        build(ProtocolKind::DirNb { pointers: n_caches as u32 }, n_caches),
        build(ProtocolKind::Dir0B, n_caches),
        build(ProtocolKind::DirB { pointers: 1 }, n_caches),
        build(ProtocolKind::DirB { pointers: 2 }, n_caches),
        build(ProtocolKind::CodedSet, n_caches),
        build(ProtocolKind::Tang, n_caches),
        build(ProtocolKind::YenFu, n_caches),
        build(ProtocolKind::Wti, n_caches),
        build(ProtocolKind::Dragon, n_caches),
        build(ProtocolKind::Berkeley, n_caches),
        build(ProtocolKind::WriteOnce, n_caches),
        build(ProtocolKind::Firefly, n_caches),
        build(ProtocolKind::Mesi, n_caches),
    ];
    // Deduplicate Dir2NB when n == 2 (it would equal the full map).
    v.dedup_by_key(|p| p.name());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_constructs_every_kind() {
        for kind in [
            ProtocolKind::DirNb { pointers: 1 },
            ProtocolKind::Dir0B,
            ProtocolKind::DirB { pointers: 1 },
            ProtocolKind::CodedSet,
            ProtocolKind::Tang,
            ProtocolKind::YenFu,
            ProtocolKind::Wti,
            ProtocolKind::Dragon,
            ProtocolKind::Berkeley,
            ProtocolKind::WriteOnce,
            ProtocolKind::Firefly,
            ProtocolKind::Mesi,
        ] {
            let p = build(kind, 4);
            assert_eq!(p.kind(), kind);
            assert_eq!(p.num_caches(), 4);
            p.check_invariants().unwrap();
        }
    }

    #[test]
    fn dispatch_resolves_the_same_concrete_type_as_build() {
        struct KindOf;
        impl ProtocolVisitor for KindOf {
            type Output = (ProtocolKind, String, usize);
            fn visit<P: Protocol>(self, p: P) -> Self::Output {
                (p.kind(), p.name(), p.num_caches())
            }
        }
        for kind in [
            ProtocolKind::DirNb { pointers: 1 },
            ProtocolKind::DirNb { pointers: 2 },
            ProtocolKind::Dir0B,
            ProtocolKind::DirB { pointers: 1 },
            ProtocolKind::DirB { pointers: 2 },
            ProtocolKind::CodedSet,
            ProtocolKind::Tang,
            ProtocolKind::YenFu,
            ProtocolKind::Wti,
            ProtocolKind::Dragon,
            ProtocolKind::Berkeley,
            ProtocolKind::WriteOnce,
            ProtocolKind::Firefly,
            ProtocolKind::Mesi,
        ] {
            let boxed = build(kind, 4);
            let (k, name, n) = dispatch(kind, 4, KindOf);
            assert_eq!(k, boxed.kind());
            assert_eq!(name, boxed.name());
            assert_eq!(n, 4);
            let (k2, ..) = dispatch_sized(kind, 4, 100, KindOf);
            assert_eq!(k2, kind);
        }
    }

    #[test]
    fn split_shards_builds_one_sized_instance_per_shard() {
        use dircc_types::{AccessKind, BlockAddr, CacheId};
        let shards = split_shards(ProtocolKind::DirNb { pointers: 2 }, 4, &[3, 0, 7]);
        assert_eq!(shards.len(), 3);
        for mut p in shards {
            assert_eq!(p.num_caches(), 4);
            // Each instance is fully functional on its own id space.
            let o = p.access(CacheId::new(1), AccessKind::Write, BlockAddr::from_index(0), true);
            assert!(o.event.is_first_ref());
            p.check_invariants().unwrap();
        }
    }

    #[test]
    fn paper_schemes_are_the_four_evaluated() {
        let names: Vec<String> = paper_schemes(4).iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["Dir1NB", "WTI", "Dir0B", "Dragon"]);
    }

    #[test]
    fn all_schemes_have_unique_names() {
        let names: Vec<String> = all_schemes(4).iter().map(|p| p.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "{names:?}");
        assert!(names.len() >= 14);
    }
}

//! The protocol abstraction and the Dir(i)X taxonomy.

use crate::event::{CoherenceStyle, EvictOutcome, Outcome};
use core::fmt;
use dircc_types::{AccessKind, BlockAddr, CacheId, CacheIdSet};

/// A point in the paper's protocol design space.
///
/// The paper classifies directory schemes as `Dir_i_X`: *i* is "the number
/// of indices kept in the directory and X is either B or NB for Broadcast
/// or No Broadcast". Snoopy comparison schemes and the §6 coded-set variant
/// complete the space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// `Dir_i_NB`: up to `i` pointers, never broadcasts; the `i`-th+1
    /// sharer forces eviction of an existing copy. `i = 1` is the paper's
    /// `Dir1NB`; `i ≥ n` is the Censier-Feautrier full map (`DirnNB`).
    DirNb {
        /// Pointer count.
        pointers: u32,
    },
    /// `Dir0B`: the Archibald-Baer two-bit scheme — no pointers, broadcast
    /// invalidates and write-back requests.
    Dir0B,
    /// `Dir_i_B` (`i ≥ 1`): up to `i` pointers plus a broadcast bit; falls
    /// back to broadcast when the pointers overflow.
    DirB {
        /// Pointer count.
        pointers: u32,
    },
    /// §6 coded-set directory: `2·log₂(n)`-bit trit code denoting a
    /// superset of the sharers; limited "broadcast" to the coded set.
    CodedSet,
    /// Tang's scheme: full-map state kept as duplicate copies of every
    /// cache directory (same state-change model as `DirnNB`, costlier
    /// directory search).
    Tang,
    /// Yen & Fu refinement of Censier-Feautrier: a per-cache *single* bit
    /// avoids the directory check when writing a clean exclusive block, at
    /// the price of extra bus traffic to maintain the bits.
    YenFu,
    /// Write-Through-With-Invalidate snoopy protocol.
    Wti,
    /// Dragon snoopy update protocol.
    Dragon,
    /// Berkeley Ownership snoopy protocol (dirty blocks supplied
    /// cache-to-cache; memory left stale).
    Berkeley,
    /// Goodman's Write-Once snoopy protocol: first write to a clean block
    /// writes through, later writes are local.
    WriteOnce,
    /// DEC Firefly snoopy update protocol: shared writes update the other
    /// copies *and* main memory.
    Firefly,
    /// The Illinois protocol (Papamarcos & Patel, reference \[5\]) — MESI:
    /// a clean-exclusive state makes the first write to unshared data
    /// free, and caches supply blocks to each other.
    Mesi,
}

impl ProtocolKind {
    /// Returns the coherence style (Dragon is the only update protocol).
    pub fn style(self) -> CoherenceStyle {
        match self {
            ProtocolKind::Dragon | ProtocolKind::Firefly => CoherenceStyle::Update,
            _ => CoherenceStyle::Invalidate,
        }
    }

    /// Returns `true` for directory-based schemes (as opposed to snoopy).
    pub fn is_directory(self) -> bool {
        !matches!(
            self,
            ProtocolKind::Wti
                | ProtocolKind::Dragon
                | ProtocolKind::Berkeley
                | ProtocolKind::WriteOnce
                | ProtocolKind::Firefly
                | ProtocolKind::Mesi
        )
    }

    /// Paper-style name, resolved against the machine size `n` (so a full
    /// map prints as `DirnNB`).
    pub fn display_name(self, n_caches: usize) -> String {
        match self {
            ProtocolKind::DirNb { pointers } if pointers as usize >= n_caches => {
                "DirnNB".to_string()
            }
            ProtocolKind::DirNb { pointers } => format!("Dir{pointers}NB"),
            ProtocolKind::Dir0B => "Dir0B".to_string(),
            ProtocolKind::DirB { pointers } => format!("Dir{pointers}B"),
            ProtocolKind::CodedSet => "DirCodedNB".to_string(),
            ProtocolKind::Tang => "Tang".to_string(),
            ProtocolKind::YenFu => "YenFu".to_string(),
            ProtocolKind::Wti => "WTI".to_string(),
            ProtocolKind::Dragon => "Dragon".to_string(),
            ProtocolKind::Berkeley => "Berkeley".to_string(),
            ProtocolKind::WriteOnce => "WriteOnce".to_string(),
            ProtocolKind::Firefly => "Firefly".to_string(),
            ProtocolKind::Mesi => "MESI".to_string(),
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolKind::DirNb { pointers } => write!(f, "Dir{pointers}NB"),
            ProtocolKind::Dir0B => f.write_str("Dir0B"),
            ProtocolKind::DirB { pointers } => write!(f, "Dir{pointers}B"),
            ProtocolKind::CodedSet => f.write_str("DirCodedNB"),
            ProtocolKind::Tang => f.write_str("Tang"),
            ProtocolKind::YenFu => f.write_str("YenFu"),
            ProtocolKind::Wti => f.write_str("WTI"),
            ProtocolKind::Dragon => f.write_str("Dragon"),
            ProtocolKind::Berkeley => f.write_str("Berkeley"),
            ProtocolKind::WriteOnce => f.write_str("WriteOnce"),
            ProtocolKind::Firefly => f.write_str("Firefly"),
            ProtocolKind::Mesi => f.write_str("MESI"),
        }
    }
}

/// A cache-coherence protocol driven one data reference at a time.
///
/// Implementations maintain all per-cache and directory state internally.
/// The driver (dircc-sim's engine) calls [`Protocol::access`] for every
/// *data* reference in trace order; instruction fetches never reach the
/// protocol (the paper assumes they cause no coherence traffic).
///
/// `Send` is a supertrait because the sharded replay path constructs one
/// instance per block shard and moves each onto its worker thread;
/// protocols are plain owned state machines, so this costs nothing.
pub trait Protocol: Send {
    /// The taxonomy point this protocol implements.
    fn kind(&self) -> ProtocolKind;

    /// Number of caches in the machine.
    fn num_caches(&self) -> usize;

    /// Applies one data reference and returns what happened.
    ///
    /// `first_ref` is `true` when no CPU has referenced `block` earlier in
    /// the trace (the driver tracks this globally so every protocol sees an
    /// identical classification).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `kind` is [`AccessKind::InstrFetch`]
    /// or `cache` is out of range.
    fn access(
        &mut self,
        cache: CacheId,
        kind: AccessKind,
        block: BlockAddr,
        first_ref: bool,
    ) -> Outcome;

    /// Handles a finite-cache replacement: `cache` drops its copy of
    /// `block`, writing dirty data back and updating directory bookkeeping
    /// (pointer removal). Returns what the eviction cost. Must be a no-op
    /// returning [`EvictOutcome::SILENT`] when the cache holds no copy.
    ///
    /// Never called in the paper's infinite-cache experiments; the default
    /// implementation panics so protocols that support the finite-cache
    /// extension must opt in explicitly.
    ///
    /// # Panics
    ///
    /// The default implementation always panics.
    fn evict(&mut self, cache: CacheId, block: BlockAddr) -> EvictOutcome {
        let _ = (cache, block);
        panic!("{} does not support finite-cache eviction", self.name())
    }

    /// Pre-sizes per-block state tables for a replay expected to touch
    /// `blocks` distinct (dense) blocks — the interner's count. Purely a
    /// capacity hint; a no-op by default.
    fn reserve_blocks(&mut self, blocks: usize) {
        let _ = blocks;
    }

    /// Which caches currently hold a valid copy of `block`.
    fn holders(&self, block: BlockAddr) -> CacheIdSet;

    /// Appends a canonical encoding of the complete protocol state to
    /// `out`, for state-space deduplication in `dircc-check`.
    ///
    /// Two states of the *same* protocol type must produce equal
    /// encodings if and only if they behave identically under every
    /// future op sequence. The encoding must therefore be
    /// self-delimiting (length-prefix variable sections), must
    /// normalise representation artifacts that cannot affect behavior
    /// (e.g. tombstone directory entries), and must exclude monotonic
    /// statistics counters.
    ///
    /// Only used by the bounded model checker; the default
    /// implementation panics so protocols opt in explicitly.
    ///
    /// # Panics
    ///
    /// The default implementation always panics.
    fn encode_state(&self, out: &mut Vec<u64>) {
        let _ = out;
        panic!("{} does not support state encoding", self.name())
    }

    /// Clones the protocol behind the trait object, for forking a state
    /// during exhaustive exploration.
    ///
    /// # Panics
    ///
    /// The default implementation always panics.
    fn boxed_clone(&self) -> Box<dyn Protocol> {
        panic!("{} does not support cloning", self.name())
    }

    /// Verifies every internal invariant (single-writer, directory/cache
    /// agreement, pointer-occupancy bounds, …).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    fn check_invariants(&self) -> Result<(), String>;

    /// Paper-style display name.
    fn name(&self) -> String {
        self.kind().display_name(self.num_caches())
    }

    /// Coherence style (invalidate vs update).
    fn style(&self) -> CoherenceStyle {
        self.kind().style()
    }
}

impl fmt::Debug for dyn Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Protocol({})", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_follow_taxonomy() {
        assert_eq!(ProtocolKind::DirNb { pointers: 1 }.to_string(), "Dir1NB");
        assert_eq!(ProtocolKind::DirNb { pointers: 4 }.display_name(4), "DirnNB");
        assert_eq!(ProtocolKind::DirNb { pointers: 2 }.display_name(4), "Dir2NB");
        assert_eq!(ProtocolKind::DirB { pointers: 1 }.to_string(), "Dir1B");
        assert_eq!(ProtocolKind::Dir0B.to_string(), "Dir0B");
        assert_eq!(ProtocolKind::Wti.display_name(4), "WTI");
    }

    #[test]
    fn dragon_is_the_update_protocol() {
        assert_eq!(ProtocolKind::Dragon.style(), CoherenceStyle::Update);
        assert_eq!(ProtocolKind::Firefly.style(), CoherenceStyle::Update);
        assert_eq!(ProtocolKind::WriteOnce.style(), CoherenceStyle::Invalidate);
        assert_eq!(ProtocolKind::Dir0B.style(), CoherenceStyle::Invalidate);
        assert_eq!(ProtocolKind::Berkeley.style(), CoherenceStyle::Invalidate);
    }

    #[test]
    fn directory_vs_snoopy_classification() {
        assert!(ProtocolKind::Dir0B.is_directory());
        assert!(ProtocolKind::CodedSet.is_directory());
        assert!(ProtocolKind::Tang.is_directory());
        assert!(!ProtocolKind::Wti.is_directory());
        assert!(!ProtocolKind::Dragon.is_directory());
        assert!(!ProtocolKind::Berkeley.is_directory());
        assert!(!ProtocolKind::WriteOnce.is_directory());
        assert!(!ProtocolKind::Firefly.is_directory());
    }
}

//! Oracle-based property tests for the protocol implementations.
//!
//! A deliberately naive reference model executes the paper's common
//! state-change specification — multiple clean copies, at most one dirty
//! copy, write-back on dirty misses — and every protocol that implements
//! that specification (`DirnNB`, `Dir0B`, `DiriB`, coded set, Tang,
//! Yen-Fu, WTI*, Berkeley*) must agree with it on *which caches hold each
//! block* and on the event classification, for arbitrary access
//! sequences. (*WTI and Berkeley share the holder evolution but not the
//! dirty classification, so only holders are compared for them.)

use dircc_core::{build, Event, MissContext, Protocol, ProtocolKind, WriteHitContext};
use dircc_types::{AccessKind, BlockAddr, CacheId, CacheIdSet};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

const CPUS: usize = 4;

/// The reference model: the paper's generic invalidation state machine.
#[derive(Debug, Default)]
struct Oracle {
    /// Per-block holder set.
    holders: HashMap<BlockAddr, CacheIdSet>,
    /// Blocks whose (sole) copy is dirty.
    dirty: HashSet<BlockAddr>,
    /// Blocks referenced at least once.
    seen: HashSet<BlockAddr>,
}

impl Oracle {
    fn classify_miss(&mut self, block: BlockAddr) -> MissContext {
        let holders = self.holders.get(&block).copied().unwrap_or_default();
        if holders.is_empty() {
            if self.seen.contains(&block) {
                MissContext::MemoryOnly
            } else {
                MissContext::FirstRef
            }
        } else if self.dirty.contains(&block) {
            MissContext::DirtyElsewhere
        } else {
            MissContext::CleanElsewhere { copies: holders.len() as u32 }
        }
    }

    /// Applies one access and returns the expected event.
    fn access(&mut self, cache: CacheId, kind: AccessKind, block: BlockAddr) -> Event {
        let event;
        let holders = self.holders.entry(block).or_default();
        match kind {
            AccessKind::Read => {
                if holders.contains(cache) {
                    event = Event::ReadHit;
                } else {
                    let holders_snapshot = *holders;
                    let ctx = self.classify_miss(block);
                    event = Event::ReadMiss(ctx);
                    // Dirty holder flushes and keeps a clean copy.
                    self.dirty.remove(&block);
                    let holders = self.holders.entry(block).or_default();
                    *holders = holders_snapshot;
                    holders.insert(cache);
                }
            }
            AccessKind::Write => {
                if holders.contains(cache) {
                    let others = holders.without(cache);
                    event = if self.dirty.contains(&block) {
                        Event::WriteHit(WriteHitContext::Dirty)
                    } else if others.is_empty() {
                        Event::WriteHit(WriteHitContext::CleanExclusive)
                    } else {
                        Event::WriteHit(WriteHitContext::CleanShared {
                            others: others.len() as u32,
                        })
                    };
                } else {
                    let ctx = self.classify_miss(block);
                    event = Event::WriteMiss(ctx);
                }
                let holders = self.holders.entry(block).or_default();
                holders.clear();
                holders.insert(cache);
                self.dirty.insert(block);
            }
            AccessKind::InstrFetch => unreachable!(),
        }
        self.seen.insert(block);
        event
    }

    fn holders_of(&self, block: BlockAddr) -> CacheIdSet {
        self.holders.get(&block).copied().unwrap_or_default()
    }
}

/// Protocols that match the oracle on events AND holders.
fn exact_kinds() -> Vec<ProtocolKind> {
    vec![
        ProtocolKind::DirNb { pointers: CPUS as u32 },
        ProtocolKind::Dir0B,
        ProtocolKind::DirB { pointers: 1 },
        ProtocolKind::DirB { pointers: 2 },
        ProtocolKind::CodedSet,
        ProtocolKind::Tang,
        ProtocolKind::YenFu,
    ]
}

/// Protocols that match the oracle on holders only (no dirty state).
fn holders_only_kinds() -> Vec<ProtocolKind> {
    vec![ProtocolKind::Wti, ProtocolKind::Berkeley]
}

#[derive(Debug, Clone, Copy)]
struct Op {
    cache: u16,
    write: bool,
    block: u64,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0..CPUS as u16, any::<bool>(), 0u64..10).prop_map(|(cache, write, block)| Op {
            cache,
            write,
            block,
        }),
        1..300,
    )
}

fn replay(
    p: &mut dyn Protocol,
    oracle: &mut Oracle,
    ops: &[Op],
    check_events: bool,
) -> Result<(), TestCaseError> {
    let mut seen = HashSet::new();
    for (i, op) in ops.iter().enumerate() {
        let cache = CacheId::new(op.cache);
        let kind = if op.write { AccessKind::Write } else { AccessKind::Read };
        let block = BlockAddr::from_index(op.block);
        let first = seen.insert(block);
        let out = p.access(cache, kind, block, first);
        let expected = oracle.access(cache, kind, block);
        if check_events {
            prop_assert_eq!(out.event, expected, "{} step {}: {:?}", p.name(), i, op);
        }
        prop_assert_eq!(
            p.holders(block),
            oracle.holders_of(block),
            "{} step {}: holder sets diverged",
            p.name(),
            i
        );
        p.check_invariants()
            .map_err(|e| TestCaseError::fail(format!("{} step {i}: invariant: {e}", p.name())))?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn multi_copy_protocols_match_the_oracle(ops in arb_ops()) {
        for kind in exact_kinds() {
            let mut p = build(kind, CPUS);
            let mut oracle = Oracle::default();
            replay(p.as_mut(), &mut oracle, &ops, true)?;
        }
    }

    #[test]
    fn wti_and_berkeley_match_oracle_holders(ops in arb_ops()) {
        for kind in holders_only_kinds() {
            let mut p = build(kind, CPUS);
            let mut oracle = Oracle::default();
            replay(p.as_mut(), &mut oracle, &ops, false)?;
        }
    }

    #[test]
    fn dir1nb_holder_is_always_the_last_accessor(ops in arb_ops()) {
        let mut p = build(ProtocolKind::DirNb { pointers: 1 }, CPUS);
        for op in &ops {
            let cache = CacheId::new(op.cache);
            let kind = if op.write { AccessKind::Write } else { AccessKind::Read };
            let block = BlockAddr::from_index(op.block);
            p.access(cache, kind, block, false);
            prop_assert_eq!(p.holders(block).sole(), Some(cache));
        }
        p.check_invariants().unwrap();
    }

    #[test]
    fn outcomes_never_claim_impossible_combinations(ops in arb_ops()) {
        for kind in exact_kinds() {
            let mut p = build(kind, CPUS);
            let mut seen = HashSet::new();
            for op in &ops {
                let block = BlockAddr::from_index(op.block);
                let first = seen.insert(block);
                let kind_a = if op.write { AccessKind::Write } else { AccessKind::Read };
                let out = p.access(CacheId::new(op.cache), kind_a, block, first);
                // Hits never move data or invalidate in the multi-copy
                // family, except the clean write hit's invalidations.
                match out.event {
                    Event::ReadHit | Event::WriteHit(WriteHitContext::Dirty) => {
                        prop_assert_eq!(out.control_messages, 0);
                        prop_assert!(!out.write_back);
                        prop_assert!(!out.used_broadcast);
                    }
                    Event::ReadMiss(MissContext::FirstRef)
                    | Event::WriteMiss(MissContext::FirstRef) => {
                        prop_assert!(!out.write_back, "{kind}: first ref cannot write back");
                    }
                    Event::ReadMiss(MissContext::DirtyElsewhere)
                    | Event::WriteMiss(MissContext::DirtyElsewhere) => {
                        prop_assert!(out.write_back, "{kind}: dirty miss must flush");
                        prop_assert!(out.memory_updated);
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn event_totals_are_permutation_sensitive_but_bounded(ops in arb_ops()) {
        // Sanity bound: total classified events equals total accesses.
        for kind in exact_kinds() {
            let mut p = build(kind, CPUS);
            let mut counters = dircc_core::EventCounters::new();
            let mut seen = HashSet::new();
            for op in &ops {
                let block = BlockAddr::from_index(op.block);
                let first = seen.insert(block);
                let kind_a = if op.write { AccessKind::Write } else { AccessKind::Read };
                let out = p.access(CacheId::new(op.cache), kind_a, block, first);
                counters.observe(&out);
            }
            prop_assert_eq!(counters.total(), ops.len() as u64);
            prop_assert_eq!(
                counters.rm_first_ref() + counters.wm_first_ref(),
                seen.len() as u64
            );
        }
    }
}

//! Wall-clock span collection for the workbench's internal phases.
//!
//! A [`SpanLog`] is shared by every worker thread of a warm-up fan-out:
//! spans record which thread executed them, so the exported trace shows
//! the actual parallel schedule. Collection cost is one `Instant` pair
//! plus one short mutex push per span — spans wrap whole phases (a trace
//! generation, a multi-million-reference replay), never the per-reference
//! hot loop.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Identifies the simulation run a span belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Paper-style scheme name (e.g. `Dir1NB`).
    pub scheme: String,
    /// Trace name (e.g. `POPS`).
    pub trace: String,
    /// Filter label (`full` or `no-spins`).
    pub filter: String,
    /// References the phase covered.
    pub refs: u64,
    /// Which block shard of a sharded replay this phase covered
    /// (`None` for whole-run phases and unsharded replays).
    pub shard: Option<usize>,
    /// The serve-daemon request ID that triggered this phase (`None`
    /// outside the daemon). Joins `/spans` output against the daemon's
    /// `x-request-id` response headers and log lines.
    pub request: Option<String>,
}

/// One completed phase: a named interval on one thread.
#[derive(Debug, Clone)]
pub struct Span {
    /// Phase name (`generate`, `filter`, `intern`, `replay`, `price`).
    pub name: String,
    /// Small dense id of the executing thread (1-based, first-use order).
    pub tid: u64,
    /// Offset from the log's epoch.
    pub start: Duration,
    /// Phase duration.
    pub dur: Duration,
    /// The run the phase belongs to, when applicable.
    pub meta: Option<RunMeta>,
}

/// An open interval handed out by [`SpanLog::start`].
#[derive(Debug)]
pub struct SpanTimer {
    started: Instant,
}

/// Thread-safe span collector with a fixed epoch.
#[derive(Debug)]
pub struct SpanLog {
    epoch: Instant,
    spans: Mutex<Vec<Span>>,
    tids: Mutex<HashMap<std::thread::ThreadId, u64>>,
}

impl Default for SpanLog {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanLog {
    /// Creates an empty log; its epoch (trace time zero) is now.
    pub fn new() -> Self {
        SpanLog {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            tids: Mutex::new(HashMap::new()),
        }
    }

    /// Opens an interval. Pass the returned timer to [`finish`](Self::finish).
    pub fn start(&self) -> SpanTimer {
        SpanTimer { started: Instant::now() }
    }

    /// Closes an interval, recording it under `name`. Returns the
    /// measured duration.
    pub fn finish(
        &self,
        timer: SpanTimer,
        name: impl Into<String>,
        meta: Option<RunMeta>,
    ) -> Duration {
        let dur = timer.started.elapsed();
        let span = Span {
            name: name.into(),
            tid: self.current_tid(),
            start: timer.started.saturating_duration_since(self.epoch),
            dur,
            meta,
        };
        self.spans.lock().expect("span log poisoned").push(span);
        dur
    }

    /// Times a closure as one span.
    pub fn time<T>(&self, name: &str, meta: Option<RunMeta>, f: impl FnOnce() -> T) -> T {
        let timer = self.start();
        let value = f();
        self.finish(timer, name, meta);
        value
    }

    /// Records an interval measured externally (e.g. by the sharded
    /// replay engine's per-shard observer). The span is attributed to the
    /// *calling* thread, so call this from the thread that did the work.
    pub fn record_at(
        &self,
        name: impl Into<String>,
        started: Instant,
        dur: Duration,
        meta: Option<RunMeta>,
    ) {
        let span = Span {
            name: name.into(),
            tid: self.current_tid(),
            start: started.saturating_duration_since(self.epoch),
            dur,
            meta,
        };
        self.spans.lock().expect("span log poisoned").push(span);
    }

    /// Snapshot of every span recorded so far, in completion order.
    pub fn spans(&self) -> Vec<Span> {
        self.spans.lock().expect("span log poisoned").clone()
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("span log poisoned").len()
    }

    /// Whether no span has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dense thread id of the calling thread (assigned on first use).
    fn current_tid(&self) -> u64 {
        let id = std::thread::current().id();
        let mut tids = self.tids.lock().expect("tid map poisoned");
        let next = tids.len() as u64 + 1;
        *tids.entry(id).or_insert(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> RunMeta {
        RunMeta {
            scheme: "Dir0B".into(),
            trace: "POPS".into(),
            filter: "full".into(),
            refs: 100,
            shard: None,
            request: None,
        }
    }

    #[test]
    fn spans_record_name_meta_and_order() {
        let log = SpanLog::new();
        log.time("generate", None, || ());
        log.time("replay", Some(meta()), || std::thread::sleep(Duration::from_millis(1)));
        let spans = log.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "generate");
        assert!(spans[0].meta.is_none());
        let replay = &spans[1];
        assert_eq!(replay.meta.as_ref().unwrap().scheme, "Dir0B");
        assert!(replay.dur >= Duration::from_millis(1));
        assert!(replay.start >= spans[0].start, "later span starts later");
    }

    #[test]
    fn same_thread_keeps_its_tid_and_threads_differ() {
        let log = SpanLog::new();
        log.time("a", None, || ());
        log.time("b", None, || ());
        std::thread::scope(|scope| {
            scope.spawn(|| log.time("c", None, || ()));
        });
        let spans = log.spans();
        assert_eq!(spans[0].tid, spans[1].tid, "one thread, one tid");
        assert_ne!(spans[0].tid, spans[2].tid, "second thread gets a fresh tid");
    }

    #[test]
    fn timer_measures_the_closure() {
        let log = SpanLog::new();
        let t = log.start();
        let dur = log.finish(t, "x", None);
        assert!(dur < Duration::from_secs(1));
        assert!(!log.is_empty());
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn external_intervals_are_recorded_with_shard_meta() {
        let log = SpanLog::new();
        let started = Instant::now();
        let m = RunMeta { shard: Some(2), ..meta() };
        log.record_at("replay-shard", started, Duration::from_millis(3), Some(m));
        let spans = log.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "replay-shard");
        assert_eq!(spans[0].dur, Duration::from_millis(3));
        assert_eq!(spans[0].meta.as_ref().unwrap().shard, Some(2));
    }
}

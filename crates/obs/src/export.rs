//! Structured export: Chrome trace-event JSON for spans and the JSONL
//! time-series schema for windowed counter deltas.
//!
//! Both formats are documented in the repo's `EXPERIMENTS.md`
//! ("Observability" section). The span export follows the Chrome
//! trace-event *JSON array format* — complete (`"ph": "X"`) events with
//! microsecond `ts`/`dur` — which Perfetto and `chrome://tracing` load
//! directly.

use crate::recorder::WindowSample;
use crate::span::Span;
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders spans as a Chrome trace-event JSON array (one complete event
/// per span, `ts`/`dur` in microseconds since the log's epoch).
///
/// Run-scoped spans carry `scheme`/`trace`/`filter`/`refs` in `args`
/// (plus `shard` for per-shard replay spans and `request` for
/// daemon-served runs), so Perfetto's query and aggregation views can
/// group by run, by shard, and by the request ID that appears in the
/// daemon's `x-request-id` headers and log lines.
pub fn chrome_trace(spans: &[Span]) -> String {
    let mut out = String::from("[\n");
    for (i, s) in spans.iter().enumerate() {
        let _ = write!(
            out,
            "{{\"name\": \"{}\", \"cat\": \"dircc\", \"ph\": \"X\", \
             \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": 1, \"tid\": {}",
            escape(&s.name),
            s.start.as_secs_f64() * 1e6,
            s.dur.as_secs_f64() * 1e6,
            s.tid
        );
        if let Some(m) = &s.meta {
            let _ = write!(
                out,
                ", \"args\": {{\"scheme\": \"{}\", \"trace\": \"{}\", \
                 \"filter\": \"{}\", \"refs\": {}",
                escape(&m.scheme),
                escape(&m.trace),
                escape(&m.filter),
                m.refs
            );
            if let Some(shard) = m.shard {
                let _ = write!(out, ", \"shard\": {shard}");
            }
            if let Some(request) = &m.request {
                let _ = write!(out, ", \"request\": \"{}\"", escape(request));
            }
            out.push('}');
        }
        out.push('}');
        out.push_str(if i + 1 < spans.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

/// Renders the complete [`EventCounters`](dircc_core::EventCounters)
/// state as one JSON object — every getter, the invalidation histogram
/// and the FNV-1a digest (hex, the same rendering `dircc bench` rows
/// use). The digest is shard- and engine-invariant, so two responses
/// describing the same run are bit-identical however they were
/// computed; the serve daemon's `/run` responses and `dircc replay
/// --json` both embed this object, which is what lets CI diff them.
pub fn counters_json(c: &dircc_core::EventCounters) -> String {
    let mut out = String::with_capacity(1024);
    out.push('{');
    let fields: [(&str, u64); 29] = [
        ("total", c.total()),
        ("instr", c.instr()),
        ("data_refs", c.data_refs()),
        ("reads", c.reads()),
        ("writes", c.writes()),
        ("read_hits", c.read_hits()),
        ("rm", c.rm()),
        ("rm_first_ref", c.rm_first_ref()),
        ("rm_blk_cln", c.rm_blk_cln()),
        ("rm_blk_drty", c.rm_blk_drty()),
        ("rm_blk_mem", c.rm_blk_mem()),
        ("wh", c.wh()),
        ("wh_blk_drty", c.wh_blk_drty()),
        ("wh_blk_cln", c.wh_blk_cln()),
        ("wh_distrib", c.wh_distrib()),
        ("wh_local", c.wh_local()),
        ("wm", c.wm()),
        ("wm_first_ref", c.wm_first_ref()),
        ("wm_blk_cln", c.wm_blk_cln()),
        ("wm_blk_drty", c.wm_blk_drty()),
        ("wm_blk_mem", c.wm_blk_mem()),
        ("control_messages", c.control_messages()),
        ("broadcasts", c.broadcasts()),
        ("write_backs", c.write_backs()),
        ("cache_supplies", c.cache_supplies()),
        ("updates", c.updates()),
        ("aux_messages", c.aux_messages()),
        ("directory_evictions", c.directory_evictions()),
        ("cache_evictions", c.cache_evictions()),
    ];
    for (name, value) in fields {
        let _ = write!(out, "\"{name}\": {value}, ");
    }
    out.push_str("\"inval_hist\": [");
    for (i, n) in c.inval_histogram().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{n}");
    }
    let _ = write!(out, "], \"digest\": \"{:016x}\"", c.digest());
    out.push('}');
    out
}

/// Renders one window of one run as a JSONL line of the time-series
/// schema.
///
/// The counter fields are the window's *delta* (events inside the window
/// only); `cycles_per_ref` is the delta priced by the caller under its
/// chosen cost model, so the sink itself stays model-agnostic.
pub fn window_jsonl_line(
    scheme: &str,
    trace: &str,
    filter: &str,
    sample: &WindowSample,
    cycles_per_ref: f64,
) -> String {
    let c = &sample.counters;
    let mut line = String::with_capacity(512);
    let _ = write!(
        line,
        "{{\"scheme\": \"{}\", \"trace\": \"{}\", \"filter\": \"{}\", \
         \"window\": {}, \"start_ref\": {}, \"end_ref\": {}, \"refs\": {}",
        escape(scheme),
        escape(trace),
        escape(filter),
        sample.index,
        sample.start_ref,
        sample.end_ref,
        sample.refs()
    );
    let fields: [(&str, u64); 18] = [
        ("instr", c.instr()),
        ("read_hits", c.read_hits()),
        ("rm", c.rm()),
        ("rm_first_ref", c.rm_first_ref()),
        ("rm_blk_cln", c.rm_blk_cln()),
        ("rm_blk_drty", c.rm_blk_drty()),
        ("rm_blk_mem", c.rm_blk_mem()),
        ("wh", c.wh()),
        ("wh_blk_drty", c.wh_blk_drty()),
        ("wh_blk_cln", c.wh_blk_cln()),
        ("wm", c.wm()),
        ("wm_first_ref", c.wm_first_ref()),
        ("wm_blk_cln", c.wm_blk_cln()),
        ("wm_blk_drty", c.wm_blk_drty()),
        ("wm_blk_mem", c.wm_blk_mem()),
        ("control_messages", c.control_messages()),
        ("broadcasts", c.broadcasts()),
        ("write_backs", c.write_backs()),
    ];
    for (name, value) in fields {
        let _ = write!(line, ", \"{name}\": {value}");
    }
    let _ = write!(line, ", \"cycles_per_ref\": {cycles_per_ref:.6}");
    line.push_str(", \"inval_hist\": [");
    for (i, n) in c.inval_histogram().iter().enumerate() {
        if i > 0 {
            line.push_str(", ");
        }
        let _ = write!(line, "{n}");
    }
    line.push_str("]}");
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{RunMeta, SpanLog};
    use dircc_core::{Event, EventCounters, MissContext, Outcome};

    #[test]
    fn chrome_trace_is_a_json_array_of_complete_events() {
        let log = SpanLog::new();
        log.time("generate", None, || ());
        log.time(
            "replay",
            Some(RunMeta {
                scheme: "Dir1NB".into(),
                trace: "POPS".into(),
                filter: "full".into(),
                refs: 42,
                shard: None,
                request: Some("ab12-0001".into()),
            }),
            || (),
        );
        log.time(
            "replay-shard",
            Some(RunMeta {
                scheme: "Dir1NB".into(),
                trace: "POPS".into(),
                filter: "full".into(),
                refs: 21,
                shard: Some(1),
                request: None,
            }),
            || (),
        );
        let json = chrome_trace(&log.spans());
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"name\": \"replay\""));
        assert!(json.contains("\"scheme\": \"Dir1NB\""));
        assert!(json.contains("\"refs\": 42"));
        assert!(json.contains("\"refs\": 21, \"shard\": 1"));
        assert!(!json.contains("\"refs\": 42, \"shard\""), "unsharded spans omit the field");
        assert!(json.contains("\"request\": \"ab12-0001\""), "request ids join spans to logs");
        assert!(!json.contains("\"shard\": 1, \"request\""), "requestless spans omit the field");
        assert_eq!(json.matches("\"cat\": \"dircc\"").count(), 3);
        // Spans with meta once emitted an unbalanced extra `}`, which
        // broke every consumer that actually parsed the export.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "braces must balance: {json}"
        );
    }

    #[test]
    fn empty_span_list_is_still_valid_json() {
        assert_eq!(chrome_trace(&[]).trim(), "[\n]");
    }

    #[test]
    fn jsonl_line_carries_the_delta_and_histogram() {
        let mut c = EventCounters::new();
        c.observe(&Outcome::quiet(Event::ReadHit));
        c.observe(&Outcome::quiet(Event::ReadMiss(MissContext::MemoryOnly)));
        let sample = WindowSample { index: 3, start_ref: 10, end_ref: 12, counters: c };
        let line = window_jsonl_line("Dir0B", "THOR", "no-spins", &sample, 0.25);
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"window\": 3"));
        assert!(line.contains("\"refs\": 2"));
        assert!(line.contains("\"read_hits\": 1"));
        assert!(line.contains("\"rm_blk_mem\": 1"));
        assert!(line.contains("\"cycles_per_ref\": 0.250000"));
        assert!(line.contains("\"inval_hist\": [0, "));
        assert!(!line.contains('\n'), "one line per window");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn counters_json_carries_every_field_and_the_digest() {
        let mut c = EventCounters::new();
        c.observe(&Outcome::quiet(Event::ReadHit));
        c.observe(&Outcome::quiet(Event::ReadMiss(MissContext::MemoryOnly)));
        let json = counters_json(&c);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"total\": 2"));
        assert!(json.contains("\"read_hits\": 1"));
        assert!(json.contains("\"rm_blk_mem\": 1"));
        assert!(json.contains("\"inval_hist\": [0, "));
        assert!(json.contains(&format!("\"digest\": \"{:016x}\"", c.digest())));
        assert!(!json.contains('\n'), "single line, embeddable in JSONL");
    }
}

//! The per-reference recorder hook and its two stock implementations.

use dircc_core::EventCounters;

/// A per-reference observation hook the replay engine is generic over.
///
/// The engine calls [`record`](Recorder::record) once per replayed trace
/// record — *after* every counter mutation for that record (including
/// finite-cache eviction traffic) — and [`finish`](Recorder::finish) once
/// when the stream ends. Both default bodies are empty, so a recorder
/// that overrides neither (the [`NoopRecorder`]) monomorphizes away and
/// the hot loop is exactly the code it was before the hook existed.
pub trait Recorder {
    /// `true` only for recorders whose hooks observe nothing (the
    /// [`NoopRecorder`]). A monomorphized replay loop may consult this to
    /// specialize the per-reference recorder call out of the no-op
    /// configuration entirely; recorders that observe anything MUST keep
    /// the default `false`.
    const IS_NOOP: bool = false;

    /// Observes the cumulative counters after reference number `refs`
    /// (1-based) has been fully accounted.
    #[inline(always)]
    fn record(&mut self, refs: u64, counters: &EventCounters) {
        let _ = (refs, counters);
    }

    /// Observes the final state once the stream is exhausted. `refs` is
    /// the total reference count; `counters` the run's final totals.
    #[inline(always)]
    fn finish(&mut self, refs: u64, counters: &EventCounters) {
        let _ = (refs, counters);
    }
}

/// The do-nothing recorder: the default for every existing entry point.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const IS_NOOP: bool = true;
}

/// One window of a time-resolved run: the counter *delta* accumulated
/// over references `start_ref + 1 ..= end_ref`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSample {
    /// Window index within the run, from 0.
    pub index: usize,
    /// References completed before this window opened.
    pub start_ref: u64,
    /// References completed when this window closed (inclusive bound).
    pub end_ref: u64,
    /// Events observed inside the window only. Summing every window's
    /// delta reconstructs the run's final counters exactly.
    pub counters: EventCounters,
}

impl WindowSample {
    /// References covered by this window.
    pub fn refs(&self) -> u64 {
        self.end_ref - self.start_ref
    }
}

/// Samples [`EventCounters`] deltas every `window` references.
///
/// The final window may be shorter when the run length is not a multiple
/// of the window size; [`finish`](Recorder::finish) closes it. Windows
/// are contiguous, non-overlapping, and partition the run.
#[derive(Debug, Clone)]
pub struct WindowedRecorder {
    window: u64,
    last_ref: u64,
    snapshot: EventCounters,
    samples: Vec<WindowSample>,
}

impl WindowedRecorder {
    /// Creates a recorder sampling every `window` references.
    ///
    /// # Panics
    ///
    /// Panics if `window` is 0.
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "window size must be at least 1 reference");
        WindowedRecorder {
            window,
            last_ref: 0,
            snapshot: EventCounters::new(),
            samples: Vec::new(),
        }
    }

    /// The configured window size in references.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Windows closed so far.
    pub fn samples(&self) -> &[WindowSample] {
        &self.samples
    }

    /// Consumes the recorder, returning the collected windows.
    pub fn into_samples(self) -> Vec<WindowSample> {
        self.samples
    }

    fn close_window(&mut self, refs: u64, counters: &EventCounters) {
        self.samples.push(WindowSample {
            index: self.samples.len(),
            start_ref: self.last_ref,
            end_ref: refs,
            counters: counters.diff(&self.snapshot),
        });
        self.snapshot = counters.clone();
        self.last_ref = refs;
    }
}

impl Recorder for WindowedRecorder {
    #[inline]
    fn record(&mut self, refs: u64, counters: &EventCounters) {
        if refs.is_multiple_of(self.window) {
            self.close_window(refs, counters);
        }
    }

    fn finish(&mut self, refs: u64, counters: &EventCounters) {
        if refs > self.last_ref {
            self.close_window(refs, counters);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dircc_core::{Event, MissContext, Outcome};

    /// Drives a recorder with a synthetic stream: `n` references, each a
    /// read hit except every 7th, which is a memory-only read miss.
    fn drive(rec: &mut impl Recorder, n: u64) -> EventCounters {
        let mut counters = EventCounters::new();
        for refs in 1..=n {
            let event = if refs.is_multiple_of(7) {
                Event::ReadMiss(MissContext::MemoryOnly)
            } else {
                Event::ReadHit
            };
            counters.observe(&Outcome::quiet(event));
            rec.record(refs, &counters);
        }
        rec.finish(n, &counters);
        counters
    }

    #[test]
    fn windows_partition_the_run() {
        let mut rec = WindowedRecorder::new(10);
        let total = drive(&mut rec, 37);
        let samples = rec.into_samples();
        assert_eq!(samples.len(), 4, "three full windows plus a 7-ref tail");
        assert_eq!(samples[3].refs(), 7);
        // Contiguous and non-overlapping.
        assert_eq!(samples[0].start_ref, 0);
        for w in samples.windows(2) {
            assert_eq!(w[0].end_ref, w[1].start_ref);
        }
        // Deltas sum exactly to the final counters.
        let mut sum = EventCounters::new();
        for s in &samples {
            assert_eq!(s.counters.total(), s.refs(), "each ref lands in one window");
            sum.merge(&s.counters);
        }
        assert_eq!(sum, total);
    }

    #[test]
    fn exact_multiple_has_no_tail_window() {
        let mut rec = WindowedRecorder::new(5);
        let total = drive(&mut rec, 20);
        assert_eq!(rec.samples().len(), 4);
        assert_eq!(rec.samples().last().unwrap().end_ref, 20);
        let mut sum = EventCounters::new();
        for s in rec.samples() {
            sum.merge(&s.counters);
        }
        assert_eq!(sum, total);
    }

    #[test]
    fn empty_run_yields_no_windows() {
        let mut rec = WindowedRecorder::new(5);
        rec.finish(0, &EventCounters::new());
        assert!(rec.samples().is_empty());
    }

    #[test]
    fn noop_recorder_does_nothing() {
        let mut rec = NoopRecorder;
        let _ = drive(&mut rec, 10);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_window_rejected() {
        let _ = WindowedRecorder::new(0);
    }
}

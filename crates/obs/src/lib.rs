//! # dircc-obs
//!
//! Observability for the dircc replay engine and workbench, built so the
//! hot path pays nothing when it is off.
//!
//! The paper's methodology reduces every protocol to end-of-run event
//! frequencies — one [`EventCounters`](dircc_core::EventCounters) per
//! (scheme, trace, filter) run. That answers aggregate questions only.
//! This crate adds the time axis back without touching the aggregate
//! numbers:
//!
//! * [`Recorder`] — a statically-dispatched per-reference hook the engine
//!   is generic over. The default method bodies are empty, so the
//!   [`NoopRecorder`] monomorphizes to nothing and the replay loop stays
//!   byte- and speed-identical when observability is off (the repo's
//!   `benchcmp` gate pins the counters).
//! * [`WindowedRecorder`] — samples counter *deltas* every K references,
//!   yielding a time-resolved miss mix, traffic trajectory, and
//!   write-to-clean invalidation fan-out histogram per window. The window
//!   deltas partition the run: summed, they reconstruct the final
//!   [`EventCounters`](dircc_core::EventCounters) exactly.
//! * [`SpanLog`] — a thread-safe wall-clock span collector for the
//!   workbench's internal phases (generate / filter / intern / replay /
//!   price), exportable as Chrome trace-event JSON loadable in Perfetto
//!   or `chrome://tracing`.
//! * [`export`] — the structured sinks: Chrome trace-event JSON for spans
//!   and a JSONL schema for the windowed time series (documented in
//!   `EXPERIMENTS.md`).
//! * [`metrics`] — lock-free runtime telemetry: atomic counters, gauges
//!   and mergeable log-linear latency histograms in a
//!   [`MetricsRegistry`], rendered as Prometheus text exposition (the
//!   serve daemon's `GET /metrics`) and parseable back with
//!   [`parse_exposition`] (`dircc top`).
//!
//! # Example
//!
//! Windowed recording around a counter stream:
//!
//! ```
//! use dircc_core::{Event, EventCounters, Outcome};
//! use dircc_obs::{Recorder, WindowedRecorder};
//!
//! let mut counters = EventCounters::new();
//! let mut rec = WindowedRecorder::new(2);
//! for refs in 1..=5u64 {
//!     counters.observe(&Outcome::quiet(Event::ReadHit));
//!     rec.record(refs, &counters);
//! }
//! rec.finish(5, &counters);
//! let samples = rec.into_samples();
//! assert_eq!(samples.len(), 3, "two full windows plus the remainder");
//! let total: u64 = samples.iter().map(|s| s.counters.total()).sum();
//! assert_eq!(total, counters.total(), "window deltas partition the run");
//! ```

pub mod export;
pub mod metrics;
pub mod recorder;
pub mod span;

pub use export::{chrome_trace, counters_json, escape, window_jsonl_line};
pub use metrics::{
    parse_exposition, samples_sum, Counter, Gauge, Histogram, MetricsRegistry, Sample,
};
pub use recorder::{NoopRecorder, Recorder, WindowSample, WindowedRecorder};
pub use span::{RunMeta, Span, SpanLog, SpanTimer};

//! Lock-free metrics primitives and Prometheus text exposition.
//!
//! A [`MetricsRegistry`] hands out cheap atomic handles — [`Counter`],
//! [`Gauge`] and [`Histogram`] — that worker threads update without any
//! lock (`Arc<AtomicU64>` under the hood). The registry itself takes a
//! mutex only on registration and on [`render`](MetricsRegistry::render),
//! both off the request path. Rendering follows the Prometheus text
//! exposition format (`# HELP` / `# TYPE` lines, `name{label="v"} value`
//! samples, cumulative `_bucket{le=...}` histogram series ending in
//! `+Inf` plus `_sum`/`_count`), so any Prometheus-compatible scraper —
//! and `dircc top` via [`parse_exposition`] — can consume `/metrics`
//! directly.
//!
//! # Histogram design
//!
//! [`Histogram`] is log-linear (HDR-style): each power-of-two octave is
//! split into `2^SUB_BITS = 16` linear sub-buckets, values below 16 get
//! an exact bucket each. Counts and sums are exact; quantiles come back
//! as the upper bound of the containing bucket, so the estimate never
//! understates and overstates by at most one sub-bucket width — a
//! relative error bounded by `1/16 = 6.25%` (exact below 16). That bound
//! is pinned by a test against sorted-sample quantiles.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` linear
/// buckets, bounding histogram quantile error at `2^-SUB_BITS`.
const SUB_BITS: u32 = 4;
const SUBS: usize = 1 << SUB_BITS;
/// Values below `SUBS` get one exact bucket each; octaves above cover
/// the rest of the `u64` range.
const NUM_BUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

/// Bucket index for a recorded value. Exact below `SUBS`; log-linear
/// above (octave = position of the highest set bit, sub-bucket = the
/// next `SUB_BITS` bits).
fn bucket_of(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // >= SUB_BITS here
    let sub = ((v >> (octave - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    SUBS + ((octave - SUB_BITS) as usize) * SUBS + sub
}

/// Inclusive upper bound of a bucket — what quantiles report.
fn bucket_upper(index: usize) -> u64 {
    if index < SUBS {
        return index as u64;
    }
    let octave = (index - SUBS) / SUBS + SUB_BITS as usize;
    let sub = ((index - SUBS) % SUBS) as u64;
    let width = 1u64 << (octave - SUB_BITS as usize);
    // `(1 << octave) - 1` first: the top bucket's upper bound is
    // `u64::MAX` and the direct `base + span - 1` order would overflow.
    (1u64 << octave) - 1 + (sub + 1) * width
}

/// A monotonically increasing counter. Clone of a handle shares the
/// underlying atomic; updates are a single relaxed `fetch_add`.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (queue depth, in-flight
/// requests). Signed so transient dips below a racing baseline don't
/// wrap.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn dec(&self) {
        self.add(-1);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistogramInner {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A mergeable log-linear latency histogram with exact `count`/`sum`
/// and bounded-error quantiles (see the module docs for the bound).
/// `observe` is three relaxed atomic adds plus one `fetch_max` — safe
/// to share across threads without locks.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: [0u64; NUM_BUCKETS].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }

    /// Records one value (for latencies: microseconds).
    pub fn observe(&self, v: u64) {
        self.0.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Folds another histogram's observations into this one (used to
    /// merge per-thread histograms after a fan-out).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.0.buckets.iter().zip(other.0.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.0.count.fetch_add(other.count(), Ordering::Relaxed);
        self.0.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.0.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest observed value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// The q-th quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// holding that rank — never an underestimate, over by at most one
    /// sub-bucket width (≤ 6.25% relative, exact below 16).
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        // Rank of the target observation, 1-based, clamped into range.
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        self.max()
    }

    /// Snapshot of the non-empty buckets as `(upper_bound, count)`
    /// pairs in ascending order — what the exposition renders.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_upper(i), n))
            })
            .collect()
    }
}

/// One label set: sorted-by-name `(name, value)` pairs.
type Labels = Vec<(String, String)>;

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Series {
    labels: Labels,
    instrument: Instrument,
}

struct Family {
    name: String,
    help: String,
    series: Vec<Series>,
}

impl Family {
    fn type_name(&self) -> &'static str {
        match self.series.first().map(|s| &s.instrument) {
            Some(Instrument::Counter(_)) => "counter",
            Some(Instrument::Gauge(_)) => "gauge",
            Some(Instrument::Histogram(_)) => "histogram",
            None => "untyped",
        }
    }
}

/// A named collection of metric families. Registration
/// (`counter`/`gauge`/`histogram`) is get-or-create on (name, labels):
/// asking twice returns a handle to the same underlying atomic, so
/// call sites don't need to thread handles around.
#[derive(Default)]
pub struct MetricsRegistry {
    families: Mutex<Vec<Family>>,
}

/// Escapes a label value for the exposition format (`\` → `\\`,
/// `"` → `\"`, newline → `\n`).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a HELP text (`\` → `\\`, newline → `\n`).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn normalize(labels: &[(&str, &str)]) -> Labels {
    let mut out: Labels = labels.iter().map(|(n, v)| (n.to_string(), v.to_string())).collect();
    out.sort();
    out
}

/// Renders `{a="x",b="y"}`, or the empty string for no labels.
fn render_labels(labels: &Labels, extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> =
        labels.iter().map(|(n, v)| format!("{n}=\"{}\"", escape_label(v))).collect();
    if let Some((n, v)) = extra {
        parts.push(format!("{n}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_create<T: Clone>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> (Instrument, T),
        downcast: impl Fn(&Instrument) -> Option<T>,
    ) -> T {
        let labels = normalize(labels);
        let mut families = self.families.lock().expect("metrics registry");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => f,
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    series: vec![],
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(series) = family.series.iter().find(|s| s.labels == labels) {
            return downcast(&series.instrument)
                .unwrap_or_else(|| panic!("metric {name} re-registered with a different type"));
        }
        let (instrument, handle) = make();
        family.series.push(Series { labels, instrument });
        handle
    }

    /// Get-or-create a counter under `name` with the given labels.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        self.get_or_create(
            name,
            help,
            labels,
            || {
                let c = Counter::new();
                (Instrument::Counter(c.clone()), c)
            },
            |i| match i {
                Instrument::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Get-or-create a gauge under `name` with the given labels.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        self.get_or_create(
            name,
            help,
            labels,
            || {
                let g = Gauge::new();
                (Instrument::Gauge(g.clone()), g)
            },
            |i| match i {
                Instrument::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Get-or-create a histogram under `name` with the given labels.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        self.get_or_create(
            name,
            help,
            labels,
            || {
                let h = Histogram::new();
                (Instrument::Histogram(h.clone()), h)
            },
            |i| match i {
                Instrument::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Renders the whole registry in the Prometheus text exposition
    /// format: families sorted by name, series by label set, label
    /// names sorted inside each series. Histograms render their
    /// non-empty buckets cumulatively, ending in `+Inf`, plus
    /// `_sum`/`_count`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let families = self.families.lock().expect("metrics registry");
        let mut order: Vec<usize> = (0..families.len()).collect();
        order.sort_by(|&a, &b| families[a].name.cmp(&families[b].name));
        let mut out = String::with_capacity(4096);
        for &fi in &order {
            let f = &families[fi];
            let _ = writeln!(out, "# HELP {} {}", f.name, escape_help(&f.help));
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.type_name());
            let mut series: Vec<&Series> = f.series.iter().collect();
            series.sort_by(|a, b| a.labels.cmp(&b.labels));
            for s in series {
                match &s.instrument {
                    Instrument::Counter(c) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            f.name,
                            render_labels(&s.labels, None),
                            c.get()
                        );
                    }
                    Instrument::Gauge(g) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            f.name,
                            render_labels(&s.labels, None),
                            g.get()
                        );
                    }
                    Instrument::Histogram(h) => {
                        let mut cumulative = 0u64;
                        for (upper, n) in h.nonzero_buckets() {
                            cumulative += n;
                            let le = upper.to_string();
                            let _ = writeln!(
                                out,
                                "{}_bucket{} {cumulative}",
                                f.name,
                                render_labels(&s.labels, Some(("le", &le)))
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            f.name,
                            render_labels(&s.labels, Some(("le", "+Inf"))),
                            h.count()
                        );
                        let _ = writeln!(
                            out,
                            "{}_sum{} {}",
                            f.name,
                            render_labels(&s.labels, None),
                            h.sum()
                        );
                        let _ = writeln!(
                            out,
                            "{}_count{} {}",
                            f.name,
                            render_labels(&s.labels, None),
                            h.count()
                        );
                    }
                }
            }
        }
        out
    }
}

/// One parsed exposition sample: metric name (with any `_bucket` /
/// `_sum` / `_count` suffix intact), its labels and the value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl Sample {
    /// The value of the label `name`, if present.
    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// Parses Prometheus text exposition back into samples — the consumer
/// side of [`MetricsRegistry::render`], used by `dircc top` to scrape
/// `/metrics`. Comment and blank lines are skipped; malformed lines are
/// an error (the daemon rendered them, so they should never appear).
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
        let (name, labels, value_part) = match line.find('{') {
            Some(brace) => {
                let close = line.rfind('}').ok_or_else(|| err("unterminated label set"))?;
                let labels = parse_labels(&line[brace + 1..close]).map_err(|e| err(&e))?;
                (line[..brace].to_string(), labels, line[close + 1..].trim().to_string())
            }
            None => {
                let mut it = line.splitn(2, ' ');
                let name = it.next().unwrap_or_default().to_string();
                let value = it.next().unwrap_or_default().trim().to_string();
                (name, Vec::new(), value)
            }
        };
        if name.is_empty() {
            return Err(err("missing metric name"));
        }
        let value: f64 = if value_part == "+Inf" {
            f64::INFINITY
        } else {
            value_part.parse().map_err(|_| err("unparseable value"))?
        };
        out.push(Sample { name, labels, value });
    }
    Ok(out)
}

fn parse_labels(inner: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without '='")?;
        let name = rest[..eq].trim().to_string();
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err("label value not quoted".to_string());
        }
        let mut value = String::new();
        let mut chars = after[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, c)) => value.push(c),
                    None => return Err("dangling escape in label value".to_string()),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or("unterminated label value")?;
        labels.push((name, value));
        rest = after[1 + end + 1..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        }
    }
    Ok(labels)
}

/// Sum of every sample named `name` whose labels include all of
/// `want` — the scrape-side aggregation `dircc top` and tests use.
pub fn samples_sum(samples: &[Sample], name: &str, want: &[(&str, &str)]) -> f64 {
    samples
        .iter()
        .filter(|s| s.name == name && want.iter().all(|(n, v)| s.label(n) == Some(v)))
        .map(|s| s.value)
        // Not `.sum()`: the std f64 sum starts from -0.0, and an empty
        // match would print as "-0" in `dircc top --once` output.
        .fold(0.0, |acc, v| acc + v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_exact_below_16_and_log_linear_above() {
        for v in 0..16u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_upper(bucket_of(v)), v, "exact region is exact");
        }
        for v in [16u64, 17, 100, 1000, 4095, 4096, 1 << 20, u64::MAX / 2, u64::MAX] {
            let i = bucket_of(v);
            let upper = bucket_upper(i);
            assert!(upper >= v, "upper bound {upper} must cover {v}");
            // One sub-bucket width of slack: ≤ 1/16 relative.
            assert!((upper - v) as f64 <= v as f64 / 16.0, "bucket error for {v}: upper {upper}");
        }
        // Bucket uppers strictly increase (so cumulative rendering is
        // well-ordered).
        let uppers: Vec<u64> = (0..NUM_BUCKETS).map(bucket_upper).collect();
        assert!(uppers.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn histogram_count_sum_max_are_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 100, 10_000, 123_456] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 133_562);
        assert_eq!(h.max(), 123_456);
        assert!((h.mean() - 133_562.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_stay_within_the_documented_bound() {
        // The satellite pin: histogram quantiles vs exact sorted
        // quantiles, within one sub-bucket (≤ 1/16 relative).
        let h = Histogram::new();
        let mut values: Vec<u64> = Vec::new();
        let mut x = 7u64;
        for i in 0..10_000u64 {
            // Deterministic spread over ~5 decades.
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = (x >> 33) % (10u64.pow((i % 5 + 1) as u32));
            values.push(v);
            h.observe(v);
        }
        values.sort_unstable();
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let est = h.quantile(q);
            assert!(est >= exact, "q{q}: estimate {est} under exact {exact}");
            let slack = (exact as f64 / 16.0).max(0.0);
            assert!(
                est as f64 <= exact as f64 + slack + 1.0,
                "q{q}: estimate {est} beyond bound for exact {exact}"
            );
        }
    }

    #[test]
    fn histogram_merge_equals_observing_everything_in_one() {
        let (a, b, both) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [1u64, 50, 999] {
            a.observe(v);
            both.observe(v);
        }
        for v in [3u64, 77, 100_000] {
            b.observe(v);
            both.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.sum(), both.sum());
        assert_eq!(a.max(), both.max());
        assert_eq!(a.nonzero_buckets(), both.nonzero_buckets());
    }

    #[test]
    fn eight_thread_hammer_lands_exact_totals() {
        // Satellite requirement: 8 threads hammer shared handles; the
        // totals must be exact, not approximate.
        let reg = MetricsRegistry::new();
        let c = reg.counter("dircc_test_ops_total", "ops", &[]);
        let g = reg.gauge("dircc_test_depth", "depth", &[]);
        let h = reg.histogram("dircc_test_latency_us", "latency", &[]);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let (c, g, h) = (c.clone(), g.clone(), h.clone());
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc();
                        g.inc();
                        g.dec();
                        h.observe(t * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
        assert_eq!(g.get(), 0);
        assert_eq!(h.count(), 80_000);
        // Sum of 0..80_000 exactly.
        assert_eq!(h.sum(), 80_000 * (80_000 - 1) / 2);
        assert_eq!(h.max(), 79_999);
    }

    #[test]
    fn get_or_create_returns_the_same_underlying_atomic() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x_total", "x", &[("route", "/run")]);
        // Label order must not matter: normalized before matching.
        let b = reg.counter("x_total", "x", &[("route", "/run")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        let other = reg.counter("x_total", "x", &[("route", "/series")]);
        assert_eq!(other.get(), 0, "distinct labels are distinct series");
    }

    #[test]
    fn empty_registry_renders_empty() {
        assert_eq!(MetricsRegistry::new().render(), "");
    }

    #[test]
    fn exposition_golden_format() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("dircc_http_requests_total", "Requests routed.", &[("route", "/run")]);
        c.add(3);
        reg.counter("dircc_http_requests_total", "Requests routed.", &[("route", "/series")]);
        let g = reg.gauge("dircc_queue_depth", "Queued connections.", &[]);
        g.set(2);
        let h = reg.histogram("dircc_latency_us", "Latency.", &[]);
        h.observe(3);
        h.observe(3);
        h.observe(20);
        let got = reg.render();
        let want = "\
# HELP dircc_http_requests_total Requests routed.
# TYPE dircc_http_requests_total counter
dircc_http_requests_total{route=\"/run\"} 3
dircc_http_requests_total{route=\"/series\"} 0
# HELP dircc_latency_us Latency.
# TYPE dircc_latency_us histogram
dircc_latency_us_bucket{le=\"3\"} 2
dircc_latency_us_bucket{le=\"20\"} 3
dircc_latency_us_bucket{le=\"+Inf\"} 3
dircc_latency_us_sum 26
dircc_latency_us_count 3
# HELP dircc_queue_depth Queued connections.
# TYPE dircc_queue_depth gauge
dircc_queue_depth 2
";
        assert_eq!(got, want);
    }

    #[test]
    fn label_values_and_help_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter("weird_total", "line one\nline \\two", &[("path", "a\"b\\c\nd")]);
        let got = reg.render();
        assert!(got.contains("# HELP weird_total line one\\nline \\\\two"), "{got}");
        assert!(got.contains("weird_total{path=\"a\\\"b\\\\c\\nd\"} 0"), "{got}");
    }

    #[test]
    fn label_names_sort_inside_a_series() {
        let reg = MetricsRegistry::new();
        reg.counter("m_total", "m", &[("zeta", "1"), ("alpha", "2")]);
        assert!(reg.render().contains("m_total{alpha=\"2\",zeta=\"1\"} 0"));
    }

    #[test]
    fn render_parse_round_trips() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total", "a", &[("route", "/run"), ("status", "200")]).add(7);
        reg.gauge("b_depth", "b", &[]).set(-3);
        let h = reg.histogram("c_us", "c", &[("route", "/run")]);
        h.observe(5);
        h.observe(500);
        let samples = parse_exposition(&reg.render()).expect("parses");
        assert_eq!(samples_sum(&samples, "a_total", &[("route", "/run")]), 7.0);
        assert_eq!(samples_sum(&samples, "b_depth", &[]), -3.0);
        assert_eq!(samples_sum(&samples, "c_us_count", &[]), 2.0);
        assert_eq!(samples_sum(&samples, "c_us_sum", &[]), 505.0);
        let inf = samples
            .iter()
            .find(|s| s.name == "c_us_bucket" && s.label("le") == Some("+Inf"))
            .expect("+Inf bucket");
        assert_eq!(inf.value, 2.0);
        // Escaped label values round-trip too.
        let reg = MetricsRegistry::new();
        reg.counter("e_total", "e", &[("p", "a\"b\\c")]).inc();
        let samples = parse_exposition(&reg.render()).expect("parses");
        assert_eq!(samples[0].label("p"), Some("a\"b\\c"));
    }

    #[test]
    fn parser_rejects_garbage_lines() {
        assert!(parse_exposition("name_without_value").is_err());
        assert!(parse_exposition("m{unterminated 1").is_err());
        assert!(parse_exposition("m{a=\"x\"} not_a_number").is_err());
        assert!(parse_exposition("# comment only\n\n").expect("ok").is_empty());
    }
}

//! End-to-end tests against a real listening server on loopback, with
//! a stub handler standing in for the simulator.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use dircc_serve::client;
use dircc_serve::server::{HandlerError, JobHandler, ServeConfig, ServeStats, Server};
use dircc_serve::JobSpec;

/// Counts invocations; optionally blocks each run on a barrier so
/// tests can hold the worker pool busy deliberately.
struct StubHandler {
    runs: AtomicUsize,
    gate: Option<Arc<Barrier>>,
}

impl StubHandler {
    fn new() -> Arc<Self> {
        Arc::new(StubHandler { runs: AtomicUsize::new(0), gate: None })
    }

    fn gated(gate: Arc<Barrier>) -> Arc<Self> {
        Arc::new(StubHandler { runs: AtomicUsize::new(0), gate: Some(gate) })
    }
}

impl JobHandler for StubHandler {
    fn run(&self, job: &JobSpec, _request_id: &str) -> Result<String, HandlerError> {
        self.runs.fetch_add(1, Ordering::SeqCst);
        if let Some(gate) = &self.gate {
            gate.wait();
        }
        if job.scheme == "no-such-scheme" {
            return Err(HandlerError::bad_request("unknown scheme 'no-such-scheme'"));
        }
        Ok(format!("{{\"echo\": \"{}\"}}\n", job.canonical()))
    }

    fn series(&self, job: &JobSpec, _request_id: &str) -> Result<Vec<String>, HandlerError> {
        Ok((0..3).map(|i| format!("{{\"window\": {i}, \"trace\": \"{}\"}}\n", job.trace)).collect())
    }

    fn spans(&self) -> String {
        "{\"traceEvents\": []}\n".to_string()
    }
}

/// Starts a daemon with `config`, returning its base URL, the handler,
/// and a join handle resolving to the drain stats.
fn start(
    config: ServeConfig,
    handler: Arc<StubHandler>,
) -> (String, Arc<StubHandler>, std::thread::JoinHandle<ServeStats>) {
    let server = Server::bind("127.0.0.1:0", config, handler.clone() as Arc<dyn JobHandler>)
        .expect("bind loopback");
    let url = format!("http://{}", server.local_addr());
    let join = std::thread::spawn(move || server.run());
    (url, handler, join)
}

fn quiet() -> ServeConfig {
    ServeConfig { log: false, ..ServeConfig::default() }
}

fn shutdown(url: &str) {
    let resp = client::request(url, "POST", "/shutdown", Some(b"{}")).expect("shutdown");
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains("draining"), "{}", resp.text());
}

const JOB: &[u8] = br#"{"scheme": "Tang", "trace": "POPS", "refs": 1000}"#;

#[test]
fn run_route_misses_then_hits_without_rerunning() {
    let (url, handler, join) = start(quiet(), StubHandler::new());

    let miss = client::request(&url, "POST", "/run", Some(JOB)).expect("first run");
    assert_eq!(miss.status, 200);
    assert_eq!(miss.header("x-cache"), Some("miss"));
    assert!(miss.text().contains("scheme=tang"), "{}", miss.text());

    let hit = client::request(&url, "POST", "/run", Some(JOB)).expect("second run");
    assert_eq!(hit.status, 200);
    assert_eq!(hit.header("x-cache"), Some("hit"));
    assert_eq!(hit.body, miss.body, "cache hit must be byte-identical");
    assert_eq!(handler.runs.load(Ordering::SeqCst), 1, "second request must not re-run");

    shutdown(&url);
    let stats = join.join().expect("server thread");
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 1);
    assert!(stats.requests >= 3);
}

#[test]
fn unknown_route_and_wrong_method_are_mapped() {
    let (url, _, join) = start(quiet(), StubHandler::new());

    let missing = client::request(&url, "GET", "/nope", None).expect("404");
    assert_eq!(missing.status, 404);
    assert!(missing.text().contains("unknown route"), "{}", missing.text());

    let wrong = client::request(&url, "GET", "/run", None).expect("405");
    assert_eq!(wrong.status, 405);
    assert_eq!(wrong.header("allow"), Some("POST"));

    shutdown(&url);
    join.join().expect("server thread");
}

#[test]
fn bad_job_json_is_a_field_level_400() {
    let (url, handler, join) = start(quiet(), StubHandler::new());

    let bad = client::request(&url, "POST", "/run", Some(br#"{"scheme": "Tang"}"#))
        .expect("missing trace");
    assert_eq!(bad.status, 400);
    assert!(bad.text().contains("field 'trace'"), "{}", bad.text());

    let shards = client::request(
        &url,
        "POST",
        "/run",
        Some(br#"{"scheme": "Tang", "trace": "POPS", "shards": 99}"#),
    )
    .expect("bad shards");
    assert_eq!(shards.status, 400);
    assert!(shards.text().contains("field 'shards'"), "{}", shards.text());
    assert_eq!(handler.runs.load(Ordering::SeqCst), 0, "invalid jobs must not reach the handler");

    shutdown(&url);
    join.join().expect("server thread");
}

#[test]
fn handler_rejections_pass_through_and_are_not_cached() {
    let (url, handler, join) = start(quiet(), StubHandler::new());
    let job = br#"{"scheme": "no-such-scheme", "trace": "POPS"}"#;

    let first = client::request(&url, "POST", "/run", Some(job)).expect("rejected");
    assert_eq!(first.status, 400);
    assert!(first.text().contains("unknown scheme"), "{}", first.text());

    let second = client::request(&url, "POST", "/run", Some(job)).expect("rejected again");
    assert_eq!(second.status, 400);
    assert_eq!(handler.runs.load(Ordering::SeqCst), 2, "errors are retried, not cached");

    shutdown(&url);
    join.join().expect("server thread");
}

#[test]
fn malformed_http_gets_an_error_status() {
    use std::io::Write;
    let (url, _, join) = start(quiet(), StubHandler::new());

    // No Content-Length on a POST → 411.
    let stream = std::net::TcpStream::connect(client::host_of(&url)).expect("connect");
    (&stream).write_all(b"POST /run HTTP/1.1\r\n\r\n").expect("send");
    let resp = client::read_response(&mut std::io::BufReader::new(&stream)).expect("read");
    assert_eq!(resp.status, 411);

    // Unparseable request line → 400.
    let stream = std::net::TcpStream::connect(client::host_of(&url)).expect("connect");
    (&stream).write_all(b"BANANAS\r\n\r\n").expect("send");
    let resp = client::read_response(&mut std::io::BufReader::new(&stream)).expect("read");
    assert_eq!(resp.status, 400);

    shutdown(&url);
    join.join().expect("server thread");
}

#[test]
fn series_route_streams_jsonl() {
    let (url, _, join) = start(quiet(), StubHandler::new());

    let resp = client::request(&url, "POST", "/series", Some(JOB)).expect("series");
    assert_eq!(resp.status, 200);
    let text = resp.text();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3);
    assert!(lines[0].contains("\"window\": 0"), "{}", lines[0]);
    assert!(lines[2].contains("\"trace\": \"POPS\""), "{}", lines[2]);

    shutdown(&url);
    join.join().expect("server thread");
}

#[test]
fn healthz_and_spans_respond() {
    let (url, _, join) = start(quiet(), StubHandler::new());

    let health = client::request(&url, "GET", "/healthz", None).expect("healthz");
    assert_eq!(health.status, 200);
    assert!(health.text().contains("\"status\": \"ok\""), "{}", health.text());

    let spans = client::request(&url, "GET", "/spans", None).expect("spans");
    assert_eq!(spans.status, 200);
    assert!(spans.text().contains("traceEvents"), "{}", spans.text());

    shutdown(&url);
    join.join().expect("server thread");
}

#[test]
fn health_reports_real_daemon_state() {
    let (url, _, join) = start(quiet(), StubHandler::new());

    // Two jobs first so the counters have something to show.
    client::request(&url, "POST", "/run", Some(JOB)).expect("miss");
    client::request(&url, "POST", "/run", Some(JOB)).expect("hit");

    // Final accounting for a request happens just after its response is
    // written, so poll briefly until every earlier request has settled
    // (then this /health is the only one in flight).
    let mut health = client::request(&url, "GET", "/health", None).expect("health");
    let settled = |r: &client::Response| {
        let v = dircc_serve::json::parse(&r.body).expect("health is JSON");
        let obj = v.as_obj().expect("object");
        let get = |k: &str| obj.get(k).and_then(dircc_serve::Json::as_u64).expect(k);
        get("completed") == get("requests") - 1 && get("inflight") == 1
    };
    for _ in 0..100 {
        if settled(&health) {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
        health = client::request(&url, "GET", "/health", None).expect("health");
    }
    assert_eq!(health.status, 200);
    assert!(settled(&health), "{}", health.text());
    let v = dircc_serve::json::parse(&health.body).expect("health is JSON");
    let obj = v.as_obj().expect("object");
    let get = |k: &str| obj.get(k).and_then(dircc_serve::Json::as_u64);
    assert_eq!(obj.get("status").and_then(dircc_serve::Json::as_str), Some("ok"));
    // The two /run requests plus this /health, at minimum.
    assert!(get("requests").unwrap() >= 3, "{}", health.text());
    assert_eq!(get("cache_hits"), Some(1));
    assert_eq!(get("cache_misses"), Some(1));
    assert_eq!(get("cache_evictions"), Some(0));
    assert_eq!(get("workers"), Some(4));
    assert_eq!(get("queued"), Some(0));
    // The /health request itself is the one in flight.
    assert_eq!(get("inflight"), Some(1), "{}", health.text());
    assert!(get("uptime_s").is_some());

    shutdown(&url);
    join.join().expect("server thread");
}

#[test]
fn every_response_carries_a_request_id() {
    let (url, _, join) = start(quiet(), StubHandler::new());

    let run = client::request(&url, "POST", "/run", Some(JOB)).expect("run");
    let id = run.header("x-request-id").expect("id on /run").to_string();
    assert!(id.contains('-') && id.len() >= 9, "generated id looks wrong: {id:?}");

    let missing = client::request(&url, "GET", "/nope", None).expect("404");
    let other = missing.header("x-request-id").expect("id on 404").to_string();
    assert_ne!(id, other, "each connection gets a fresh id");

    // A sane client-supplied id is echoed back verbatim.
    let echoed = client::request_with_headers(
        &url,
        "GET",
        "/health",
        &[("x-request-id", "my-trace-42")],
        None,
    )
    .expect("health");
    assert_eq!(echoed.header("x-request-id"), Some("my-trace-42"));

    // An unsafe one (whitespace) is replaced by a generated id.
    let replaced = client::request_with_headers(
        &url,
        "GET",
        "/health",
        &[("x-request-id", "has space")],
        None,
    )
    .expect("health");
    let got = replaced.header("x-request-id").expect("id still present");
    assert_ne!(got, "has space");

    shutdown(&url);
    join.join().expect("server thread");
}

#[test]
fn metrics_expose_reconciled_counters() {
    let (url, _, join) = start(quiet(), StubHandler::new());

    client::request(&url, "POST", "/run", Some(JOB)).expect("miss");
    client::request(&url, "POST", "/run", Some(JOB)).expect("hit");
    client::request(&url, "GET", "/health", None).expect("health");

    // Latency histograms settle just after the response is written;
    // poll until both /run observations landed.
    let mut scrape = client::request(&url, "GET", "/metrics", None).expect("metrics");
    for _ in 0..100 {
        let s = dircc_obs::parse_exposition(&scrape.text()).expect("valid exposition");
        if dircc_obs::samples_sum(&s, "dircc_http_request_duration_us_count", &[("route", "/run")])
            == 2.0
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
        scrape = client::request(&url, "GET", "/metrics", None).expect("metrics");
    }
    assert_eq!(scrape.status, 200);
    assert_eq!(scrape.header("content-type"), Some("text/plain; version=0.0.4; charset=utf-8"));
    let samples = dircc_obs::parse_exposition(&scrape.text()).expect("valid exposition");
    let sum = |name: &str, labels: &[(&str, &str)]| dircc_obs::samples_sum(&samples, name, labels);
    assert_eq!(sum("dircc_http_requests_total", &[("route", "/run")]), 2.0);
    assert_eq!(sum("dircc_http_requests_total", &[("route", "/health")]), 1.0);
    assert_eq!(sum("dircc_result_cache_events_total", &[("event", "hit")]), 1.0);
    assert_eq!(sum("dircc_result_cache_events_total", &[("event", "miss")]), 1.0);
    assert_eq!(sum("dircc_http_errors_total", &[]), 0.0);
    // Latency histograms count what the route counters count.
    assert_eq!(sum("dircc_http_request_duration_us_count", &[("route", "/run")]), 2.0);
    assert!(sum("dircc_http_request_duration_us_sum", &[("route", "/run")]) > 0.0);

    // A later scrape sees the earlier one(s) accounted.
    let again = client::request(&url, "GET", "/metrics", None).expect("metrics again");
    let samples = dircc_obs::parse_exposition(&again.text()).expect("valid exposition");
    assert!(
        dircc_obs::samples_sum(&samples, "dircc_http_requests_total", &[("route", "/metrics")])
            >= 1.0
    );

    shutdown(&url);
    join.join().expect("server thread");
}

#[test]
fn concurrent_identical_jobs_dedup_to_one_handler_run() {
    // Gate: all 4 clients must be in-flight before any run completes,
    // so a slow first request can't mask broken single-flight.
    let gate = Arc::new(Barrier::new(2));
    let config = ServeConfig { workers: 4, ..quiet() };
    let (url, handler, join) = start(config, StubHandler::gated(gate.clone()));

    let clients: Vec<_> = (0..4)
        .map(|_| {
            let url = url.clone();
            std::thread::spawn(move || {
                client::request(&url, "POST", "/run", Some(JOB)).expect("run")
            })
        })
        .collect();
    // Let the requests land and coalesce on the single filling cell,
    // then release the one handler run.
    std::thread::sleep(Duration::from_millis(100));
    gate.wait();

    let bodies: Vec<Vec<u8>> = clients
        .into_iter()
        .map(|c| c.join().expect("client"))
        .map(|r| {
            assert_eq!(r.status, 200);
            r.body
        })
        .collect();
    assert!(bodies.windows(2).all(|w| w[0] == w[1]), "all responses identical");
    assert_eq!(handler.runs.load(Ordering::SeqCst), 1, "one workbench run for 4 submissions");

    shutdown(&url);
    join.join().expect("server thread");
}

#[test]
fn full_queue_answers_429_with_retry_after() {
    // One worker, blocked on the barrier; queue depth 1. Request A
    // occupies the worker, B fills the queue, C must be refused.
    let gate = Arc::new(Barrier::new(2));
    let config = ServeConfig { workers: 1, queue_depth: 1, ..quiet() };
    let (url, _, join) = start(config, StubHandler::gated(gate.clone()));

    let blocker = {
        let url = url.clone();
        std::thread::spawn(move || {
            client::request(&url, "POST", "/run", Some(JOB)).expect("blocker")
        })
    };
    // Wait for the blocker to reach the handler (it holds the worker).
    std::thread::sleep(Duration::from_millis(100));

    let queued = {
        let url = url.clone();
        std::thread::spawn(move || {
            client::request(&url, "POST", "/run", Some(br#"{"scheme": "Tang", "trace": "THOR"}"#))
                .expect("queued")
        })
    };
    std::thread::sleep(Duration::from_millis(100));

    let refused =
        client::request(&url, "POST", "/run", Some(br#"{"scheme": "Tang", "trace": "PERO"}"#))
            .expect("refused");
    assert_eq!(refused.status, 429);
    assert_eq!(refused.header("retry-after"), Some("1"));

    // Release the worker; A completes, then B drains off the queue.
    gate.wait();
    assert_eq!(blocker.join().expect("blocker").status, 200);
    gate.wait();
    assert_eq!(queued.join().expect("queued").status, 200);

    shutdown(&url);
    join.join().expect("server thread");
}

#[test]
fn shutdown_drains_in_flight_work_and_refuses_new() {
    // Worker 1 is mid-job (gated); a second worker takes /shutdown.
    // The gated job must still complete; later requests must be 503.
    let gate = Arc::new(Barrier::new(2));
    let config = ServeConfig { workers: 2, ..quiet() };
    let (url, _, join) = start(config, StubHandler::gated(gate.clone()));

    let in_flight = {
        let url = url.clone();
        std::thread::spawn(move || {
            client::request(&url, "POST", "/run", Some(JOB)).expect("in-flight")
        })
    };
    std::thread::sleep(Duration::from_millis(100));

    shutdown(&url);
    gate.wait();
    let resp = in_flight.join().expect("in-flight client");
    assert_eq!(resp.status, 200, "in-flight work survives the drain");

    let stats = join.join().expect("server exits after draining");
    assert!(stats.requests >= 2);

    // The listener is gone: either refused outright or reset.
    assert!(client::request(&url, "GET", "/healthz", None).is_err(), "daemon must be gone");
}

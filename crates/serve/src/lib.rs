//! dircc-serve: a long-running simulation service.
//!
//! A std-only HTTP/1.1 JSON daemon — the build environment is offline,
//! so everything from request parsing to the threadpool is hand-rolled
//! on the standard library. The crate knows nothing about directory
//! schemes: simulation is injected through the [`JobHandler`] trait
//! (implemented by `dircc-sim`), which keeps the package graph acyclic.
//!
//! Routes:
//!
//! | route            | method | body                                          |
//! |------------------|--------|-----------------------------------------------|
//! | `/health`        | GET    | daemon status: uptime, queue, in-flight, cache|
//! | `/healthz`       | GET    | alias of `/health` (legacy)                   |
//! | `/metrics`       | GET    | Prometheus text exposition of all instruments |
//! | `/run`           | POST   | job → counters + evaluation JSON (LRU-cached) |
//! | `/series`        | POST   | job → windowed RunSeries as chunked JSONL     |
//! | `/spans`         | GET    | chrome-trace span export                      |
//! | `/shutdown`      | POST   | begin graceful drain                          |
//!
//! Backpressure: a bounded connection queue; 429 + `Retry-After` when
//! full. Caching: LRU on the canonical job config with single-flight
//! fills, so identical concurrent submissions run the workbench once.
//! Telemetry: every request carries an `x-request-id` (generated or
//! client-supplied) echoed on the response, in the structured stderr
//! log line ([`logger::Logger`]), and into span metadata; counters,
//! gauges and latency histograms ([`metrics::ServerMetrics`]) live on a
//! shared `dircc_obs::MetricsRegistry` scraped at `GET /metrics`.

pub mod cache;
pub mod client;
pub mod http;
pub mod job;
pub mod json;
pub mod logger;
pub mod metrics;
pub mod queue;
pub mod server;

pub use cache::{CacheCounters, Lru, Outcome, ResultCache};
pub use client::{request, request_with_headers, Response};
pub use job::{JobEngine, JobError, JobSpec, DEFAULT_SEED};
pub use json::Json;
pub use logger::{Level, LogValue, Logger};
pub use metrics::ServerMetrics;
pub use queue::{Bounded, PushError};
pub use server::{HandlerError, JobHandler, ServeConfig, ServeStats, Server};

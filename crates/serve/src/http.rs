//! Minimal HTTP/1.1 request parsing and response writing.
//!
//! The build environment is offline, so the whole layer is hand-rolled on
//! `std` — no hyper, no async. The parser is deliberately strict and
//! bounded: request lines and header lines are capped at
//! [`MAX_LINE_BYTES`], header count at [`MAX_HEADERS`], and bodies at
//! [`MAX_BODY_BYTES`], so a misbehaving client can never grow server
//! memory without bound. Reads go through `Read::read_exact`, which
//! retries `ErrorKind::Interrupted` and surfaces short reads as
//! `UnexpectedEof` — the partial-read tests drive the parser one byte at
//! a time with interrupts injected between every byte (mirroring the
//! trace codec's EOF tests) to pin that behavior.

use std::io::{BufRead, ErrorKind, Write};

/// Longest accepted request line or header line, in bytes.
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Most headers accepted on one request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body, in bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The connection closed cleanly before a request line arrived —
    /// not an error worth a response (the peer is gone).
    ClosedBeforeRequest,
    /// A transport error while reading.
    Io(std::io::Error),
    /// A protocol violation → `400 Bad Request`.
    Malformed(String),
    /// A body-carrying method without `Content-Length` → `411`.
    LengthRequired,
    /// `Content-Length` beyond [`MAX_BODY_BYTES`] → `413`.
    BodyTooLarge(usize),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::ClosedBeforeRequest => write!(f, "connection closed before a request"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::LengthRequired => write!(f, "missing Content-Length"),
            HttpError::BodyTooLarge(n) => {
                write!(f, "body of {n} bytes exceeds the {MAX_BODY_BYTES}-byte limit")
            }
        }
    }
}

impl HttpError {
    /// The status code an error response should carry (`None`: the peer
    /// is gone or the transport broke — write nothing).
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::ClosedBeforeRequest | HttpError::Io(_) => None,
            HttpError::Malformed(_) => Some(400),
            HttpError::LengthRequired => Some(411),
            HttpError::BodyTooLarge(_) => Some(413),
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Method token, as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target (path only; any `?query` is kept verbatim).
    pub path: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes (empty without one).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }
}

/// Reads one `\n`-terminated line of at most `MAX_LINE_BYTES` bytes,
/// stripping the trailing `\r\n` / `\n`. `Ok(None)` means EOF before any
/// byte arrived.
pub(crate) fn read_line(r: &mut dyn BufRead) -> Result<Option<String>, HttpError> {
    let mut line = Vec::with_capacity(80);
    let mut byte = [0u8; 1];
    loop {
        match r.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) if e.kind() == ErrorKind::UnexpectedEof => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Malformed("unexpected EOF inside a line".to_string()));
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map(Some)
                .map_err(|_| HttpError::Malformed("line is not valid UTF-8".to_string()));
        }
        line.push(byte[0]);
        if line.len() > MAX_LINE_BYTES {
            return Err(HttpError::Malformed(format!(
                "line exceeds the {MAX_LINE_BYTES}-byte limit"
            )));
        }
    }
}

/// Reads and validates one full request from `r`.
pub fn read_request(r: &mut dyn BufRead) -> Result<Request, HttpError> {
    let line = read_line(r)?.ok_or(HttpError::ClosedBeforeRequest)?;
    let mut parts = line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "request line must be `METHOD PATH HTTP/1.1`, got {line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed(format!("unsupported protocol version {version:?}")));
    }
    if !path.starts_with('/') {
        return Err(HttpError::Malformed(format!(
            "request path must start with '/', got {path:?}"
        )));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?
            .ok_or_else(|| HttpError::Malformed("EOF inside the header block".to_string()))?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("header line without ':': {line:?}")));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed(format!("invalid header name {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        if headers.len() > MAX_HEADERS {
            return Err(HttpError::Malformed(format!("more than {MAX_HEADERS} headers")));
        }
    }

    let req = Request { method: method.to_string(), path: path.to_string(), headers, body: vec![] };
    if req.header("transfer-encoding").is_some() {
        return Err(HttpError::Malformed("chunked request bodies are not supported".to_string()));
    }
    let content_length = match req.header("content-length") {
        Some(v) => Some(v.parse::<usize>().map_err(|_| {
            HttpError::Malformed(format!("Content-Length is not a non-negative integer: {v:?}"))
        })?),
        None => None,
    };
    let body_len = match (req.method.as_str(), content_length) {
        (_, Some(n)) if n > MAX_BODY_BYTES => return Err(HttpError::BodyTooLarge(n)),
        (_, Some(n)) => n,
        ("POST" | "PUT" | "PATCH", None) => return Err(HttpError::LengthRequired),
        (_, None) => 0,
    };
    let mut body = vec![0u8; body_len];
    match r.read_exact(&mut body) {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => {
            return Err(HttpError::Malformed(format!(
                "body truncated: Content-Length {body_len} but the connection closed early"
            )))
        }
        Err(e) => return Err(HttpError::Io(e)),
    }
    Ok(Request { body, ..req })
}

/// Canonical reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one complete `Connection: close` response with a
/// `Content-Length` body and `application/json` content type.
pub fn write_response(
    w: &mut dyn Write,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    write_response_typed(w, status, extra_headers, "application/json", body)
}

/// [`write_response`] with an explicit content type (`/metrics` serves
/// Prometheus text, everything else JSON).
pub fn write_response_typed(
    w: &mut dyn Write,
    status: u16,
    extra_headers: &[(&str, &str)],
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write!(w, "HTTP/1.1 {status} {}\r\n", reason(status))?;
    write!(w, "Content-Type: {content_type}\r\n")?;
    write!(w, "Content-Length: {}\r\n", body.len())?;
    write!(w, "Connection: close\r\n")?;
    for (name, value) in extra_headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    write!(w, "\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// A `Transfer-Encoding: chunked` response body: one chunk per
/// [`write_chunk`](Self::write_chunk), terminated by
/// [`finish`](Self::finish).
pub struct ChunkedBody<'w> {
    w: &'w mut dyn Write,
}

impl<'w> ChunkedBody<'w> {
    /// Writes the response head and returns the open chunked body.
    pub fn begin(
        w: &'w mut dyn Write,
        status: u16,
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<Self> {
        write!(w, "HTTP/1.1 {status} {}\r\n", reason(status))?;
        write!(w, "Content-Type: application/json\r\n")?;
        write!(w, "Transfer-Encoding: chunked\r\n")?;
        write!(w, "Connection: close\r\n")?;
        for (name, value) in extra_headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(w, "\r\n")?;
        Ok(ChunkedBody { w })
    }

    /// Writes one chunk (empty chunks are skipped: a zero-length chunk
    /// would terminate the stream).
    pub fn write_chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        write!(self.w, "\r\n")
    }

    /// Terminates the stream with the zero-length chunk.
    pub fn finish(self) -> std::io::Result<()> {
        write!(self.w, "0\r\n\r\n")?;
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Read};

    /// Delivers the wire bytes one at a time, returning
    /// `ErrorKind::Interrupted` before every byte — the harshest legal
    /// `Read` implementation (mirrors the codec EOF tests of PR 6).
    struct TrickleReader {
        data: Vec<u8>,
        pos: usize,
        interrupt_next: bool,
    }

    impl TrickleReader {
        fn new(data: &[u8]) -> Self {
            TrickleReader { data: data.to_vec(), pos: 0, interrupt_next: true }
        }
    }

    impl Read for TrickleReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.interrupt_next {
                self.interrupt_next = false;
                return Err(std::io::Error::new(ErrorKind::Interrupted, "try again"));
            }
            self.interrupt_next = true;
            if self.pos >= self.data.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    fn parse(wire: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(wire))
    }

    fn parse_trickled(wire: &[u8]) -> Result<Request, HttpError> {
        // A 1-byte buffer keeps BufReader from absorbing the trickle.
        read_request(&mut BufReader::with_capacity(1, TrickleReader::new(wire)))
    }

    const POST: &[u8] = b"POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";

    #[test]
    fn parses_a_complete_post() {
        let req = parse(POST).expect("valid request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/run");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"), "header lookup is case-insensitive");
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn survives_byte_at_a_time_reads_with_interrupts() {
        let req = parse_trickled(POST).expect("trickled request");
        assert_eq!(req.path, "/run");
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn bare_lf_line_endings_are_accepted() {
        let req = parse(b"GET /healthz HTTP/1.1\nHost: x\n\n").expect("LF-only request");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        for wire in [
            &b"GET\r\n\r\n"[..],
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET /x SPDY/3\r\n\r\n",
            b"GET nopath HTTP/1.1\r\n\r\n",
            b" /x HTTP/1.1\r\n\r\n",
        ] {
            match parse(wire) {
                Err(HttpError::Malformed(_)) => {}
                other => panic!("{:?}: expected Malformed, got {other:?}", wire),
            }
        }
    }

    #[test]
    fn missing_content_length_on_post_is_length_required() {
        match parse(b"POST /run HTTP/1.1\r\n\r\n") {
            Err(e @ HttpError::LengthRequired) => assert_eq!(e.status(), Some(411)),
            other => panic!("expected LengthRequired, got {other:?}"),
        }
    }

    #[test]
    fn get_without_content_length_has_an_empty_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").expect("bodyless GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn oversized_content_length_is_rejected_without_allocating() {
        let wire = format!("POST /run HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        match parse(wire.as_bytes()) {
            Err(e @ HttpError::BodyTooLarge(_)) => assert_eq!(e.status(), Some(413)),
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn non_numeric_content_length_is_malformed() {
        for cl in ["ten", "-1", "4.5", ""] {
            let wire = format!("POST /run HTTP/1.1\r\nContent-Length: {cl}\r\n\r\nbody");
            match parse(wire.as_bytes()) {
                Err(HttpError::Malformed(m)) => assert!(m.contains("Content-Length"), "{m}"),
                other => panic!("{cl:?}: expected Malformed, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_body_is_malformed_at_every_cut() {
        for cut in POST.len() - 4..POST.len() {
            match parse(&POST[..cut]) {
                Err(HttpError::Malformed(m)) => assert!(m.contains("truncated"), "{m}"),
                other => panic!("cut at {cut}: expected Malformed, got {other:?}"),
            }
        }
    }

    #[test]
    fn eof_before_any_byte_is_closed_not_an_error_response() {
        match parse(b"") {
            Err(e @ HttpError::ClosedBeforeRequest) => assert_eq!(e.status(), None),
            other => panic!("expected ClosedBeforeRequest, got {other:?}"),
        }
    }

    #[test]
    fn eof_inside_the_header_block_is_malformed() {
        match parse(b"GET /x HTTP/1.1\r\nHost: x\r\n") {
            Err(HttpError::Malformed(_)) => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn overlong_lines_and_header_floods_are_bounded() {
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE_BYTES + 1));
        assert!(matches!(parse(long.as_bytes()), Err(HttpError::Malformed(_))));
        let mut flood = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..MAX_HEADERS + 1 {
            flood.push_str(&format!("h{i}: v\r\n"));
        }
        flood.push_str("\r\n");
        assert!(matches!(parse(flood.as_bytes()), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn chunked_request_bodies_are_rejected() {
        match parse(b"POST /run HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n") {
            Err(HttpError::Malformed(m)) => assert!(m.contains("chunked"), "{m}"),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn bad_header_lines_are_rejected() {
        for wire in [&b"GET /x HTTP/1.1\r\nnocolon\r\n\r\n"[..], b"GET /x HTTP/1.1\r\n: v\r\n\r\n"]
        {
            assert!(matches!(parse(wire), Err(HttpError::Malformed(_))), "{wire:?}");
        }
    }

    #[test]
    fn responses_have_the_expected_shape() {
        let mut out = Vec::new();
        write_response(&mut out, 429, &[("Retry-After", "1")], b"{}").expect("write");
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn typed_responses_carry_their_content_type() {
        let mut out = Vec::new();
        write_response_typed(&mut out, 200, &[], "text/plain; version=0.0.4", b"x 1\n")
            .expect("write");
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"));
        assert!(text.ends_with("\r\n\r\nx 1\n"));
    }

    #[test]
    fn chunked_bodies_encode_and_terminate() {
        let mut out = Vec::new();
        {
            let mut body = ChunkedBody::begin(&mut out, 200, &[]).expect("head");
            body.write_chunk(b"hello\n").expect("chunk");
            body.write_chunk(b"").expect("empty chunk is skipped");
            body.write_chunk(b"world\n").expect("chunk");
            body.finish().expect("finish");
        }
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.contains("6\r\nhello\n\r\n"));
        assert!(text.contains("6\r\nworld\n\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
    }
}

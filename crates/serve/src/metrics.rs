//! The daemon's metric families, pre-registered on a shared
//! [`MetricsRegistry`].
//!
//! Per-route series are pre-created for the known route table (plus an
//! `other` catch-all), so `/metrics` cardinality is bounded no matter
//! what paths clients probe. Error counters carry a `status` label; the
//! server only ever emits a small fixed set of statuses, so that label
//! is bounded too. Latencies are recorded in microseconds.

use std::sync::Arc;
use std::time::Duration;

use dircc_obs::{Counter, Gauge, Histogram, MetricsRegistry};

/// Routes that get their own metric series; anything else lands on
/// [`OTHER_ROUTE`].
pub const ROUTES: &[&str] =
    &["/run", "/series", "/health", "/healthz", "/metrics", "/spans", "/shutdown"];
/// Catch-all route label for unknown paths (bounds cardinality).
pub const OTHER_ROUTE: &str = "other";

/// Normalizes a request path to a bounded route label.
pub fn route_label(path: &str) -> &'static str {
    ROUTES.iter().copied().find(|r| *r == path).unwrap_or(OTHER_ROUTE)
}

/// Every instrument the server updates, with cheap cloned handles.
pub struct ServerMetrics {
    registry: Arc<MetricsRegistry>,
    requests: Vec<(&'static str, Counter)>,
    latency: Vec<(&'static str, Histogram)>,
    /// Connections refused before routing, by status (429/503).
    pub refused_429: Counter,
    pub refused_503: Counter,
    /// Accepted-but-unrouted connections now waiting in the queue.
    pub queue_depth: Gauge,
    /// Connections a worker is actively serving.
    pub inflight: Gauge,
    /// Seconds since the daemon started (refreshed on scrape).
    pub uptime: Gauge,
    pub cache_hits: Counter,
    pub cache_misses: Counter,
    pub cache_evictions: Counter,
    /// Requests that waited on another request's in-flight fill.
    pub singleflight_coalesced: Counter,
}

impl ServerMetrics {
    pub fn new(registry: Arc<MetricsRegistry>) -> ServerMetrics {
        let requests = ROUTES
            .iter()
            .chain(std::iter::once(&OTHER_ROUTE))
            .map(|&r| {
                (
                    r,
                    registry.counter(
                        "dircc_http_requests_total",
                        "Requests that reached the router, by route.",
                        &[("route", r)],
                    ),
                )
            })
            .collect();
        let latency = ROUTES
            .iter()
            .chain(std::iter::once(&OTHER_ROUTE))
            .map(|&r| {
                (
                    r,
                    registry.histogram(
                        "dircc_http_request_duration_us",
                        "Request wall time from read to response, microseconds.",
                        &[("route", r)],
                    ),
                )
            })
            .collect();
        let refused = |status: &str| {
            registry.counter(
                "dircc_http_refused_total",
                "Connections answered before routing (backpressure or drain), by status.",
                &[("status", status)],
            )
        };
        let cache = |event: &str| {
            registry.counter(
                "dircc_result_cache_events_total",
                "Result-cache events: hit, miss, eviction, coalesced (single-flight dedup).",
                &[("event", event)],
            )
        };
        ServerMetrics {
            requests,
            latency,
            refused_429: refused("429"),
            refused_503: refused("503"),
            queue_depth: registry.gauge(
                "dircc_queue_depth",
                "Accepted connections waiting for a worker.",
                &[],
            ),
            inflight: registry.gauge(
                "dircc_inflight_requests",
                "Connections currently being served by a worker.",
                &[],
            ),
            uptime: registry.gauge(
                "dircc_uptime_seconds",
                "Seconds since the daemon started (refreshed on scrape).",
                &[],
            ),
            cache_hits: cache("hit"),
            cache_misses: cache("miss"),
            cache_evictions: cache("eviction"),
            singleflight_coalesced: cache("coalesced"),
            registry,
        }
    }

    /// The registry behind these handles (what `/metrics` renders).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Counts a request the moment it reaches the router — *before* the
    /// response is written, so a scrape issued right after a response
    /// lands always sees that request counted (the CI gate reconciles
    /// `dircc_http_requests_total` exactly against its submitted load).
    pub fn mark_request(&self, path: &str) {
        let route = route_label(path);
        if let Some((_, c)) = self.requests.iter().find(|(r, _)| *r == route) {
            c.inc();
        }
    }

    /// Records a finished request: the per-route latency histogram,
    /// plus the error counter for 4xx/5xx statuses.
    pub fn observe_request(&self, path: &str, status: u16, wall: Duration) {
        let route = route_label(path);
        if let Some((_, h)) = self.latency.iter().find(|(r, _)| *r == route) {
            h.observe(wall.as_micros().min(u128::from(u64::MAX)) as u64);
        }
        if status >= 400 {
            self.error(route, status);
        }
    }

    /// Per-route, per-status error counter (statuses are the server's
    /// own bounded set, so this cannot explode cardinality).
    fn error(&self, route: &'static str, status: u16) {
        self.registry
            .counter(
                "dircc_http_errors_total",
                "Error responses (status >= 400) from the router, by route and status.",
                &[("route", route), ("status", &status.to_string())],
            )
            .inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dircc_obs::{parse_exposition, samples_sum};

    #[test]
    fn unknown_paths_collapse_to_other() {
        assert_eq!(route_label("/run"), "/run");
        assert_eq!(route_label("/nope"), OTHER_ROUTE);
        assert_eq!(route_label("/run/extra"), OTHER_ROUTE);
    }

    #[test]
    fn observed_requests_land_in_the_right_series() {
        let m = ServerMetrics::new(Arc::new(MetricsRegistry::new()));
        for (path, status, us) in [("/run", 200, 1500), ("/run", 200, 2500), ("/weird", 404, 10)] {
            m.mark_request(path);
            m.observe_request(path, status, Duration::from_micros(us));
        }
        let samples = parse_exposition(&m.registry().render()).expect("parses");
        assert_eq!(samples_sum(&samples, "dircc_http_requests_total", &[("route", "/run")]), 2.0);
        assert_eq!(samples_sum(&samples, "dircc_http_requests_total", &[("route", "other")]), 1.0);
        assert_eq!(
            samples_sum(
                &samples,
                "dircc_http_errors_total",
                &[("route", "other"), ("status", "404")]
            ),
            1.0
        );
        assert_eq!(
            samples_sum(&samples, "dircc_http_request_duration_us_count", &[("route", "/run")]),
            2.0
        );
        // 200s leave the error families untouched.
        assert_eq!(samples_sum(&samples, "dircc_http_errors_total", &[("route", "/run")]), 0.0);
    }
}

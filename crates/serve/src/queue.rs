//! Bounded MPMC queue of accepted connections.
//!
//! The accept loop `try_push`es; workers block on `pop`. A full queue
//! is the backpressure signal — the accept thread answers 429 inline
//! instead of letting work pile up unboundedly. `close()` starts the
//! drain: pushes are refused, but `pop` keeps returning queued items
//! until the queue is empty, then yields `None` so workers exit. That
//! ordering is exactly "graceful shutdown drains in-flight jobs".

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused. The rejected value rides along so the caller
/// can still respond on the connection.
#[derive(Debug)]
pub enum PushError<T> {
    /// At capacity → backpressure (429).
    Full(T),
    /// Draining → refuse new work (503).
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded blocking queue.
pub struct Bounded<T> {
    capacity: usize,
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

impl<T> Bounded<T> {
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Bounded {
            capacity,
            inner: Mutex::new(Inner { items: VecDeque::with_capacity(capacity), closed: false }),
            ready: Condvar::new(),
        }
    }

    /// Queued item count right now.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking, or hands the item back.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next item. `None` means closed *and* drained —
    /// the worker should exit.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue wait");
        }
    }

    /// Begins the drain: refuses new pushes, wakes every blocked
    /// worker. Queued items remain poppable.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_is_fifo() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_refuses_with_the_item() {
        let q = Bounded::new(2);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        match q.try_push("c") {
            Err(PushError::Full("c")) => {}
            other => panic!("expected Full(\"c\"), got {other:?}"),
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_yields_none() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        match q.try_push(3) {
            Err(PushError::Closed(3)) => {}
            other => panic!("expected Closed(3), got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1), "queued work survives close");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "drained + closed ends the worker");
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(Bounded::<u32>::new(4));
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // Give the workers time to block on the empty queue.
        std::thread::sleep(std::time::Duration::from_millis(30));
        q.close();
        for w in workers {
            assert_eq!(w.join().unwrap(), None);
        }
    }

    #[test]
    fn concurrent_producers_and_consumers_move_every_item() {
        let q = Arc::new(Bounded::new(8));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = q.pop() {
                        got.push(item);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let mut item = p * 100 + i;
                        loop {
                            match q.try_push(item) {
                                Ok(()) => break,
                                Err(PushError::Full(back)) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                                Err(PushError::Closed(_)) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        let expected: Vec<u32> = (0..4).flat_map(|p| (0..50).map(move |i| p * 100 + i)).collect();
        assert_eq!(all, expected);
    }
}

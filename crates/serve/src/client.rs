//! A small blocking HTTP client, for the load generator, the `submit`
//! CLI command, and the loopback tests. Speaks exactly the dialect the
//! server emits: `Connection: close`, `Content-Length` or chunked
//! bodies.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::http::read_line;

/// One complete response.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    /// Header names lowercased, arrival order.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// The body as text (lossy — responses are always UTF-8 JSON).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn bad_data(message: String) -> std::io::Error {
    std::io::Error::new(ErrorKind::InvalidData, message)
}

/// Strips an `http://` prefix and any trailing `/` from a base URL,
/// leaving `host:port` for `TcpStream::connect`.
pub fn host_of(base_url: &str) -> &str {
    base_url.strip_prefix("http://").unwrap_or(base_url).trim_end_matches('/')
}

/// Issues one request against `base_url` (e.g.
/// `http://127.0.0.1:4888`) and reads the complete response.
pub fn request(
    base_url: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> std::io::Result<Response> {
    request_with_headers(base_url, method, path, &[], body)
}

/// [`request`] with extra request headers (e.g. a caller-chosen
/// `x-request-id` to correlate against server logs and spans).
pub fn request_with_headers(
    base_url: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&[u8]>,
) -> std::io::Result<Response> {
    let stream = TcpStream::connect(host_of(base_url))?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;

    // One buffered write: a server refusing this connection (429/503)
    // responds after a single read and closes — a multi-write request
    // would hit EPIPE on the later writes and lose the response.
    let mut wire = Vec::with_capacity(256 + body.map_or(0, <[u8]>::len));
    write!(wire, "{method} {path} HTTP/1.1\r\n")?;
    write!(wire, "Host: {}\r\n", host_of(base_url))?;
    write!(wire, "Connection: close\r\n")?;
    for (name, value) in headers {
        write!(wire, "{name}: {value}\r\n")?;
    }
    if let Some(body) = body {
        write!(wire, "Content-Length: {}\r\n", body.len())?;
        write!(wire, "Content-Type: application/json\r\n")?;
    }
    write!(wire, "\r\n")?;
    if let Some(body) = body {
        wire.extend_from_slice(body);
    }
    let mut w = &stream;
    w.write_all(&wire)?;
    w.flush()?;

    let mut reader = BufReader::new(&stream);
    read_response(&mut reader)
}

/// Parses a response from an already-connected reader.
pub fn read_response(reader: &mut dyn BufRead) -> std::io::Result<Response> {
    let line = |reader: &mut dyn BufRead, what: &str| -> std::io::Result<String> {
        match read_line(reader) {
            Ok(Some(line)) => Ok(line),
            Ok(None) => Err(bad_data(format!("connection closed before {what}"))),
            Err(e) => Err(bad_data(format!("while reading {what}: {e}"))),
        }
    };

    let status_line = line(reader, "the status line")?;
    let mut parts = status_line.splitn(3, ' ');
    let status = match (parts.next(), parts.next()) {
        (Some(version), Some(code)) if version.starts_with("HTTP/1.") => code
            .parse::<u16>()
            .map_err(|_| bad_data(format!("unparseable status code in {status_line:?}")))?,
        _ => return Err(bad_data(format!("unparseable status line {status_line:?}"))),
    };

    let mut headers = Vec::new();
    loop {
        let header = line(reader, "a header")?;
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(bad_data(format!("header line without ':': {header:?}")));
        };
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let find = |name: &str| headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str());
    let mut body = Vec::new();
    if find("transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked")) {
        loop {
            let size_line = line(reader, "a chunk size")?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| bad_data(format!("bad chunk size {size_line:?}")))?;
            if size == 0 {
                // Trailer section: lines until the blank terminator.
                while !line(reader, "a chunk trailer")?.is_empty() {}
                break;
            }
            let start = body.len();
            body.resize(start + size, 0);
            reader.read_exact(&mut body[start..])?;
            let mut crlf = [0u8; 2];
            reader.read_exact(&mut crlf)?;
            if &crlf != b"\r\n" {
                return Err(bad_data("chunk data not CRLF-terminated".to_string()));
            }
        }
    } else if let Some(length) = find("content-length") {
        let length: usize =
            length.parse().map_err(|_| bad_data(format!("bad Content-Length {length:?}")))?;
        body.resize(length, 0);
        reader.read_exact(&mut body)?;
    } else {
        reader.read_to_end(&mut body)?;
    }

    Ok(Response { status, headers, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(wire: &[u8]) -> std::io::Result<Response> {
        read_response(&mut BufReader::new(wire))
    }

    #[test]
    fn strips_url_scheme_and_trailing_slash() {
        assert_eq!(host_of("http://127.0.0.1:4888/"), "127.0.0.1:4888");
        assert_eq!(host_of("127.0.0.1:4888"), "127.0.0.1:4888");
    }

    #[test]
    fn parses_a_content_length_response() {
        let r = parse(b"HTTP/1.1 200 OK\r\nX-Cache: hit\r\nContent-Length: 2\r\n\r\n{}")
            .expect("valid");
        assert_eq!(r.status, 200);
        assert_eq!(r.header("x-cache"), Some("hit"));
        assert_eq!(r.body, b"{}");
    }

    #[test]
    fn parses_a_chunked_response() {
        let r = parse(
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n6\r\nhello\n\r\n6\r\nworld\n\r\n0\r\n\r\n",
        )
        .expect("valid");
        assert_eq!(r.text(), "hello\nworld\n");
    }

    #[test]
    fn reads_to_eof_without_a_length() {
        let r = parse(b"HTTP/1.1 200 OK\r\n\r\nrest").expect("valid");
        assert_eq!(r.body, b"rest");
    }

    #[test]
    fn rejects_garbage_status_lines() {
        for wire in [&b"nonsense\r\n\r\n"[..], b"HTTP/1.1 abc OK\r\n\r\n", b""] {
            assert!(parse(wire).is_err(), "{wire:?}");
        }
    }

    #[test]
    fn rejects_truncated_chunked_bodies() {
        let wire = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n6\r\nhel";
        assert!(parse(wire).is_err());
    }
}

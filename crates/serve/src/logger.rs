//! Serialized, timestamped structured logging for the daemon.
//!
//! Every log line is formatted *completely* into a `String` first and
//! only then written with a single `write_all` under one mutex — so
//! concurrent worker threads can never interleave mid-line (a
//! multi-threaded test pins this). Lines carry an ISO-8601 UTC
//! timestamp (hand-rolled from `SystemTime`; the container is offline
//! and the workspace is std-only), a level, a message, and typed
//! key=value fields. `--log-json` switches the same fields to one JSON
//! object per line for machine ingestion.

use std::io::Write;
use std::sync::Mutex;
use std::time::SystemTime;

use crate::json::escape;

/// Log severity. The daemon uses `Info` for served requests and `Warn`
/// for refusals/errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    Info,
    Warn,
    Error,
}

impl Level {
    fn label(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// A typed field value, so JSON output keeps numbers as numbers.
#[derive(Debug, Clone)]
pub enum LogValue {
    Str(String),
    Uint(u64),
    Float(f64),
}

impl From<&str> for LogValue {
    fn from(v: &str) -> Self {
        LogValue::Str(v.to_string())
    }
}

impl From<String> for LogValue {
    fn from(v: String) -> Self {
        LogValue::Str(v)
    }
}

impl From<u64> for LogValue {
    fn from(v: u64) -> Self {
        LogValue::Uint(v)
    }
}

impl From<u16> for LogValue {
    fn from(v: u16) -> Self {
        LogValue::Uint(u64::from(v))
    }
}

impl From<f64> for LogValue {
    fn from(v: f64) -> Self {
        LogValue::Float(v)
    }
}

struct Inner {
    sink: Mutex<Box<dyn Write + Send>>,
    json: bool,
}

/// A line-serialized structured logger. Cheap to share by reference;
/// [`Logger::disabled`] short-circuits every call.
pub struct Logger {
    inner: Option<Inner>,
}

impl Logger {
    /// Logs to stderr; `json` switches to JSON-lines format.
    pub fn stderr(json: bool) -> Logger {
        Logger::to_sink(Box::new(std::io::stderr()), json)
    }

    /// Logs to an arbitrary sink (tests use a shared buffer).
    pub fn to_sink(sink: Box<dyn Write + Send>, json: bool) -> Logger {
        Logger { inner: Some(Inner { sink: Mutex::new(sink), json }) }
    }

    /// Swallows everything (`--quiet` daemons, unit tests).
    pub fn disabled() -> Logger {
        Logger { inner: None }
    }

    pub fn info(&self, msg: &str, fields: &[(&str, LogValue)]) {
        self.log(Level::Info, msg, fields);
    }

    pub fn warn(&self, msg: &str, fields: &[(&str, LogValue)]) {
        self.log(Level::Warn, msg, fields);
    }

    pub fn error(&self, msg: &str, fields: &[(&str, LogValue)]) {
        self.log(Level::Error, msg, fields);
    }

    /// Formats the whole line, then writes it in one call under the
    /// sink mutex — the no-mid-line-interleaving invariant.
    pub fn log(&self, level: Level, msg: &str, fields: &[(&str, LogValue)]) {
        let Some(inner) = &self.inner else { return };
        let line = render_line(inner.json, SystemTime::now(), level, msg, fields);
        let mut sink = inner.sink.lock().expect("log sink");
        let _ = sink.write_all(line.as_bytes());
        let _ = sink.flush();
    }
}

/// Renders one complete log line, newline-terminated.
fn render_line(
    json: bool,
    at: SystemTime,
    level: Level,
    msg: &str,
    fields: &[(&str, LogValue)],
) -> String {
    use std::fmt::Write as _;
    let ts = timestamp_utc(at);
    let mut line = String::with_capacity(128);
    if json {
        let _ = write!(
            line,
            "{{\"ts\": \"{ts}\", \"level\": \"{}\", \"msg\": \"{}\"",
            level.label(),
            escape(msg)
        );
        for (name, value) in fields {
            match value {
                LogValue::Str(s) => {
                    let _ = write!(line, ", \"{}\": \"{}\"", escape(name), escape(s));
                }
                LogValue::Uint(n) => {
                    let _ = write!(line, ", \"{}\": {n}", escape(name));
                }
                LogValue::Float(f) => {
                    let _ = write!(line, ", \"{}\": {f:.3}", escape(name));
                }
            }
        }
        line.push('}');
    } else {
        let _ = write!(line, "{ts} {:<5} {msg}", level.label().to_ascii_uppercase());
        for (name, value) in fields {
            match value {
                LogValue::Str(s) => {
                    let _ = write!(line, " {name}={s}");
                }
                LogValue::Uint(n) => {
                    let _ = write!(line, " {name}={n}");
                }
                LogValue::Float(f) => {
                    let _ = write!(line, " {name}={f:.3}");
                }
            }
        }
    }
    line.push('\n');
    line
}

/// `2026-08-09T12:34:56.789Z` — ISO-8601 UTC with milliseconds,
/// computed from the Unix epoch with the standard civil-from-days
/// calendar algorithm (proleptic Gregorian).
pub fn timestamp_utc(at: SystemTime) -> String {
    let since = at.duration_since(SystemTime::UNIX_EPOCH).unwrap_or_default();
    let secs = since.as_secs();
    let millis = since.subsec_millis();
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let (year, month, day) = civil_from_days(days);
    format!(
        "{year:04}-{month:02}-{day:02}T{:02}:{:02}:{:02}.{millis:03}Z",
        rem / 3600,
        (rem / 60) % 60,
        rem % 60
    )
}

/// Days-since-epoch → (year, month, day), proleptic Gregorian.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097); // day of era [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    /// A `Write` that appends into a shared buffer — lets the test
    /// inspect exactly what reached the sink, across threads.
    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn timestamps_are_iso8601_utc() {
        let t = SystemTime::UNIX_EPOCH + Duration::from_millis(0);
        assert_eq!(timestamp_utc(t), "1970-01-01T00:00:00.000Z");
        // 2026-08-09 00:00:00 UTC = 1786233600.
        let t = SystemTime::UNIX_EPOCH + Duration::from_secs(1_786_233_600);
        assert_eq!(timestamp_utc(t), "2026-08-09T00:00:00.000Z");
        // Leap-year day: 2024-02-29 12:30:45.678 = 1709209845.678.
        let t = SystemTime::UNIX_EPOCH + Duration::from_millis(1_709_209_845_678);
        assert_eq!(timestamp_utc(t), "2024-02-29T12:30:45.678Z");
    }

    #[test]
    fn text_lines_carry_level_message_and_fields() {
        let line = render_line(
            false,
            SystemTime::UNIX_EPOCH,
            Level::Info,
            "request",
            &[("path", "/run".into()), ("status", 200u16.into()), ("wall_ms", 1.25f64.into())],
        );
        assert_eq!(
            line,
            "1970-01-01T00:00:00.000Z INFO  request path=/run status=200 wall_ms=1.250\n"
        );
    }

    #[test]
    fn json_lines_parse_and_keep_number_types() {
        let line = render_line(
            true,
            SystemTime::UNIX_EPOCH,
            Level::Warn,
            "refused",
            &[("status", 429u16.into()), ("peer", "with \"quotes\"".into())],
        );
        assert!(line.ends_with('\n'));
        let v = crate::json::parse(line.trim_end().as_bytes()).expect("valid JSON");
        let obj = v.as_obj().expect("object");
        assert_eq!(obj.get("level").and_then(crate::json::Json::as_str), Some("warn"));
        assert_eq!(obj.get("status").and_then(crate::json::Json::as_u64), Some(429));
        assert_eq!(obj.get("peer").and_then(crate::json::Json::as_str), Some("with \"quotes\""));
    }

    #[test]
    fn concurrent_loggers_never_interleave_mid_line() {
        // The satellite pin: 8 threads x 200 lines through one logger;
        // every line in the sink must be complete and well-formed.
        let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        let logger = Logger::to_sink(Box::new(buf.clone()), false);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let logger = &logger;
                s.spawn(move || {
                    for i in 0..200u64 {
                        logger.info("request", &[("thread", t.into()), ("seq", i.into())]);
                    }
                });
            }
        });
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).expect("utf-8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1600);
        for line in &lines {
            assert!(
                line.contains(" INFO  request thread=") && line.contains(" seq="),
                "torn line: {line:?}"
            );
            assert_eq!(line.matches("INFO").count(), 1, "two lines fused: {line:?}");
        }
    }

    #[test]
    fn disabled_logger_is_silent() {
        // Nothing to assert beyond "does not panic and writes nowhere".
        Logger::disabled().info("x", &[("k", "v".into())]);
    }
}

//! LRU result cache with single-flight fills.
//!
//! Two layers:
//!
//! * [`Lru`] — a plain bounded map with recency eviction, directly
//!   testable (eviction order is a satellite test requirement).
//! * [`ResultCache`] — wraps `Lru` with per-key single-flight: when N
//!   threads ask for the same uncomputed key at once, exactly one runs
//!   the fill closure and the rest block on a `Condvar` until the value
//!   lands. That is what turns "identical configs dedup to one
//!   workbench run under concurrent submission" from a hope into an
//!   invariant. `OnceLock::wait` would be the obvious primitive but is
//!   nightly-only, hence the hand-rolled cell.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use dircc_obs::Counter;

/// Bounded map with least-recently-used eviction. Not thread-safe on
/// its own — callers wrap it in a mutex.
pub struct Lru<V> {
    capacity: usize,
    map: HashMap<String, V>,
    /// Keys from least- to most-recently used.
    recency: Vec<String>,
}

impl<V> Lru<V> {
    /// A cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Lru {
            capacity,
            map: HashMap::with_capacity(capacity),
            recency: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn touch(&mut self, key: &str) {
        if let Some(i) = self.recency.iter().position(|k| k == key) {
            let k = self.recency.remove(i);
            self.recency.push(k);
        }
    }

    /// Looks up `key`, marking it most-recently used on a hit.
    pub fn get(&mut self, key: &str) -> Option<&V> {
        if self.map.contains_key(key) {
            self.touch(key);
            self.map.get(key)
        } else {
            None
        }
    }

    /// Inserts (or replaces) `key`, returning the evicted key if the
    /// cache was full.
    pub fn insert(&mut self, key: &str, value: V) -> Option<String> {
        if self.map.insert(key.to_string(), value).is_some() {
            self.touch(key);
            return None;
        }
        self.recency.push(key.to_string());
        if self.map.len() > self.capacity {
            let victim = self.recency.remove(0);
            self.map.remove(&victim);
            return Some(victim);
        }
        None
    }

    /// Removes `key` outright (used to drop failed fills).
    pub fn remove(&mut self, key: &str) {
        if self.map.remove(key).is_some() {
            self.recency.retain(|k| k != key);
        }
    }
}

/// What a fill produced: the response body, or an HTTP-ready error.
/// Errors are *not* cached — a transient failure must not poison a key.
pub type FillResult = Result<String, (u16, String)>;

/// One in-flight or completed fill.
struct Cell {
    state: Mutex<CellState>,
    ready: Condvar,
}

enum CellState {
    /// The filling thread is still running.
    Pending,
    /// The fill finished; waiters take a clone.
    Done(FillResult),
}

/// Outcome of a cache lookup, for the `X-Cache` header and stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Served from the cache without running the fill.
    Hit,
    /// This call ran the fill.
    Miss,
    /// Another thread was already filling; this call waited for it.
    /// Reported as a hit on the wire — the workbench ran once.
    Coalesced,
}

impl Outcome {
    pub fn wire_label(self) -> &'static str {
        match self {
            Outcome::Hit | Outcome::Coalesced => "hit",
            Outcome::Miss => "miss",
        }
    }
}

/// The cache's event counters. Constructed standalone by
/// [`ResultCache::new`]; the daemon instead passes handles registered on
/// its metrics registry, so `/metrics` reads the very same atomics the
/// cache increments — no reconciliation drift possible.
#[derive(Default, Clone)]
pub struct CacheCounters {
    /// Served from the cache without running the fill (includes
    /// coalesced waits — the workbench ran once for them too).
    pub hits: Counter,
    /// This call ran the fill.
    pub misses: Counter,
    /// Keys displaced by LRU pressure.
    pub evictions: Counter,
    /// Waits on another caller's in-flight fill (also counted as hits).
    pub coalesced: Counter,
}

/// Thread-safe single-flight LRU over [`FillResult`]s.
pub struct ResultCache {
    inner: Mutex<Lru<Arc<Cell>>>,
    counters: CacheCounters,
}

impl ResultCache {
    pub fn new(capacity: usize) -> Self {
        ResultCache::with_counters(capacity, CacheCounters::default())
    }

    /// A cache whose event counters are shared with the caller (the
    /// daemon registers them as `dircc_result_cache_events_total`).
    pub fn with_counters(capacity: usize, counters: CacheCounters) -> Self {
        ResultCache { inner: Mutex::new(Lru::new(capacity)), counters }
    }

    /// (hits, misses) served so far. Coalesced waits count as hits.
    pub fn stats(&self) -> (u64, u64) {
        (self.counters.hits.get(), self.counters.misses.get())
    }

    /// (hits, misses, evictions, coalesced) served so far.
    pub fn detailed_stats(&self) -> (u64, u64, u64, u64) {
        (
            self.counters.hits.get(),
            self.counters.misses.get(),
            self.counters.evictions.get(),
            self.counters.coalesced.get(),
        )
    }

    /// Returns the cached value for `key`, running `fill` at most once
    /// per cache generation across all concurrent callers.
    pub fn get_or_fill(
        &self,
        key: &str,
        fill: impl FnOnce() -> FillResult,
    ) -> (FillResult, Outcome) {
        let (cell, filler) = {
            let mut lru = self.inner.lock().expect("cache lock");
            match lru.get(key) {
                Some(cell) => (Arc::clone(cell), false),
                None => {
                    let cell = Arc::new(Cell {
                        state: Mutex::new(CellState::Pending),
                        ready: Condvar::new(),
                    });
                    if lru.insert(key, Arc::clone(&cell)).is_some() {
                        self.counters.evictions.inc();
                    }
                    (cell, true)
                }
            }
        };

        if filler {
            self.counters.misses.inc();
            // If `fill` panics the guard records an error so waiters
            // wake instead of blocking forever, and evicts the key so
            // the poisoned cell is not served to later callers.
            struct FillGuard<'c> {
                cache: &'c ResultCache,
                key: &'c str,
                cell: &'c Cell,
                done: bool,
            }
            impl Drop for FillGuard<'_> {
                fn drop(&mut self) {
                    if !self.done {
                        *self.cell.state.lock().expect("cell lock") =
                            CellState::Done(Err((500, "job panicked".to_string())));
                        self.cell.ready.notify_all();
                        self.cache.inner.lock().expect("cache lock").remove(self.key);
                    }
                }
            }
            let mut guard = FillGuard { cache: self, key, cell: &cell, done: false };
            let result = fill();
            *cell.state.lock().expect("cell lock") = CellState::Done(result.clone());
            cell.ready.notify_all();
            guard.done = true;
            drop(guard);
            if result.is_err() {
                // Do not cache failures: the next request retries.
                self.inner.lock().expect("cache lock").remove(key);
            }
            return (result, Outcome::Miss);
        }

        let mut state = cell.state.lock().expect("cell lock");
        let outcome = match *state {
            CellState::Done(_) => Outcome::Hit,
            CellState::Pending => Outcome::Coalesced,
        };
        if outcome == Outcome::Coalesced {
            self.counters.coalesced.inc();
        }
        while matches!(*state, CellState::Pending) {
            state = cell.ready.wait(state).expect("cell wait");
        }
        self.counters.hits.inc();
        match &*state {
            CellState::Done(result) => (result.clone(), outcome),
            CellState::Pending => unreachable!("loop exits only on Done"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn lru_evicts_in_recency_order_at_tiny_capacity() {
        let mut lru = Lru::new(2);
        assert_eq!(lru.insert("a", 1), None);
        assert_eq!(lru.insert("b", 2), None);
        // Touch "a" so "b" becomes the LRU victim.
        assert_eq!(lru.get("a"), Some(&1));
        assert_eq!(lru.insert("c", 3), Some("b".to_string()));
        assert_eq!(lru.get("b"), None);
        assert_eq!(lru.get("a"), Some(&1));
        assert_eq!(lru.get("c"), Some(&3));
        // "a" was just touched, so inserting "d" evicts "c"? No — "c"
        // was touched after "a" above; the order is now a, c → evict a.
        assert_eq!(lru.insert("d", 4), Some("a".to_string()));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn lru_replacing_a_key_does_not_evict() {
        let mut lru = Lru::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.insert("a", 10), None);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get("a"), Some(&10));
        // Replacement refreshed "a", so "b" is the victim.
        assert_eq!(lru.insert("c", 3), Some("b".to_string()));
    }

    #[test]
    fn lru_remove_clears_recency() {
        let mut lru = Lru::new(2);
        lru.insert("a", 1);
        lru.remove("a");
        assert!(lru.is_empty());
        lru.insert("b", 2);
        lru.insert("c", 3);
        assert_eq!(lru.insert("d", 4), Some("b".to_string()));
    }

    #[test]
    fn second_lookup_is_a_hit() {
        let cache = ResultCache::new(4);
        let (first, o1) = cache.get_or_fill("k", || Ok("v".to_string()));
        assert_eq!(first.unwrap(), "v");
        assert_eq!(o1, Outcome::Miss);
        let (second, o2) = cache.get_or_fill("k", || panic!("must not refill"));
        assert_eq!(second.unwrap(), "v");
        assert_eq!(o2, Outcome::Hit);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn concurrent_identical_keys_fill_exactly_once() {
        let cache = Arc::new(ResultCache::new(4));
        let fills = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let fills = Arc::clone(&fills);
                std::thread::spawn(move || {
                    let (result, _) = cache.get_or_fill("k", || {
                        fills.fetch_add(1, Ordering::SeqCst);
                        // Stretch the fill window so other threads pile up.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        Ok("v".to_string())
                    });
                    result.unwrap()
                })
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap(), "v");
        }
        assert_eq!(fills.load(Ordering::SeqCst), 1, "single-flight must dedup the fill");
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 7);
    }

    #[test]
    fn detailed_stats_count_lru_evictions() {
        let cache = ResultCache::new(2);
        let _ = cache.get_or_fill("a", || Ok("1".to_string()));
        let _ = cache.get_or_fill("b", || Ok("2".to_string()));
        let _ = cache.get_or_fill("c", || Ok("3".to_string()));
        assert_eq!(cache.detailed_stats(), (0, 3, 1, 0));
    }

    #[test]
    fn waiting_on_an_inflight_fill_counts_as_coalesced() {
        let cache = Arc::new(ResultCache::new(4));
        let (tx, rx) = std::sync::mpsc::channel();
        let c2 = Arc::clone(&cache);
        let filler = std::thread::spawn(move || {
            c2.get_or_fill("k", || {
                tx.send(()).unwrap();
                // Hold the cell Pending long enough for the main
                // thread's lookup to land on it.
                std::thread::sleep(std::time::Duration::from_millis(50));
                Ok("v".to_string())
            })
        });
        rx.recv().unwrap();
        let (result, o) = cache.get_or_fill("k", || unreachable!("fill is in flight"));
        assert_eq!(result.unwrap(), "v");
        assert_eq!(o, Outcome::Coalesced);
        filler.join().unwrap().0.unwrap();
        assert_eq!(cache.detailed_stats(), (1, 1, 0, 1));
    }

    #[test]
    fn errors_are_returned_but_not_cached() {
        let cache = ResultCache::new(4);
        let (first, _) = cache.get_or_fill("k", || Err((400, "bad".to_string())));
        assert_eq!(first.unwrap_err().0, 400);
        let (second, o) = cache.get_or_fill("k", || Ok("recovered".to_string()));
        assert_eq!(second.unwrap(), "recovered");
        assert_eq!(o, Outcome::Miss, "a failed fill must not occupy the key");
    }

    #[test]
    fn panicking_fill_wakes_waiters_and_clears_the_key() {
        let cache = Arc::new(ResultCache::new(4));
        let c2 = Arc::clone(&cache);
        let panicker = std::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = c2.get_or_fill("k", || panic!("boom"));
            }));
        });
        panicker.join().expect("catch_unwind absorbed the panic");
        let (result, o) = cache.get_or_fill("k", || Ok("after".to_string()));
        assert_eq!(result.unwrap(), "after");
        assert_eq!(o, Outcome::Miss);
    }
}

//! A small strict JSON parser for job bodies.
//!
//! Offline build → no serde. Jobs are tiny flat objects, so a
//! recursive-descent parser over the raw bytes is all that is needed.
//! Errors carry the byte offset so a 400 response can point at the
//! problem. Duplicate object keys are rejected — a job that says
//! `"shards": 1, "shards": 8` is a client bug, not a tie to break
//! silently.

use std::collections::BTreeMap;

/// Maximum nesting depth — job bodies are flat, so this only bounds
/// hostile input.
const MAX_DEPTH: usize = 16;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Keys in sorted order (BTreeMap) — job canonicalization relies on
    /// deterministic iteration.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// A parse failure, locating the offending byte.
#[derive(Debug)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

/// Escapes `s` for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'b> {
    bytes: &'b [u8],
    pos: usize,
}

/// Parses `input` as exactly one JSON value (trailing whitespace only).
pub fn parse(input: &[u8]) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input, pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing bytes after the JSON value"));
    }
    Ok(value)
}

impl<'b> Parser<'b> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {text:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than the limit"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected byte")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &self.bytes[self.pos..self.pos + 4];
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not needed for job fields.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(byte) if byte < 0x20 => {
                    return Err(self.err("unescaped control byte in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .or_else(|e| {
                            if e.valid_up_to() > 0 {
                                std::str::from_utf8(&rest[..e.valid_up_to()])
                            } else {
                                Err(e)
                            }
                        })
                        .map_err(|_| self.err("string is not valid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        let n: f64 = text.parse().map_err(|_| JsonError {
            offset: start,
            message: format!("invalid number {text:?}"),
        })?;
        if !n.is_finite() {
            return Err(JsonError { offset: start, message: "number overflows f64".to_string() });
        }
        Ok(Json::Num(n))
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key_offset = self.pos;
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            if map.insert(key.clone(), value).is_some() {
                return Err(JsonError {
                    offset: key_offset,
                    message: format!("duplicate key {key:?}"),
                });
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_job_shaped_object() {
        let v = parse(br#"{"scheme": "DirB(1)", "trace": "POPS", "refs": 20000, "shards": 4}"#)
            .expect("valid json");
        let obj = v.as_obj().expect("object");
        assert_eq!(obj["scheme"].as_str(), Some("DirB(1)"));
        assert_eq!(obj["refs"].as_u64(), Some(20_000));
        assert_eq!(obj["shards"].as_u64(), Some(4));
    }

    #[test]
    fn scalars_round_trip() {
        assert_eq!(parse(b"null").unwrap(), Json::Null);
        assert_eq!(parse(b"true").unwrap(), Json::Bool(true));
        assert_eq!(parse(b"false").unwrap(), Json::Bool(false));
        assert_eq!(parse(b"-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(parse(br#""aA\n""#).unwrap(), Json::Str("aA\n".to_string()));
        assert_eq!(
            parse(br#"[1, [2], {}]"#).unwrap(),
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Arr(vec![Json::Num(2.0)]),
                Json::Obj(BTreeMap::new())
            ])
        );
    }

    #[test]
    fn rejects_garbage_with_an_offset() {
        for (input, offset_hint) in
            [(&b"{"[..], 1usize), (b"{\"a\" 1}", 5), (b"[1,]", 3), (b"tru", 0), (b"1 2", 2)]
        {
            let err = parse(input).expect_err("must fail");
            assert_eq!(err.offset, offset_hint, "{:?}: {err}", input);
        }
    }

    #[test]
    fn rejects_duplicate_keys() {
        let err = parse(br#"{"shards": 1, "shards": 8}"#).expect_err("dup key");
        assert!(err.message.contains("duplicate key"), "{err}");
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(64) + &"]".repeat(64);
        let err = parse(deep.as_bytes()).expect_err("too deep");
        assert!(err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn as_u64_rejects_fractional_and_negative() {
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(0.0).as_u64(), Some(0));
    }

    #[test]
    fn utf8_passthrough_in_strings() {
        assert_eq!(parse("\"héllo\"".as_bytes()).unwrap(), Json::Str("héllo".to_string()));
    }

    #[test]
    fn escape_round_trips_through_the_parser() {
        let hairy = "a\"b\\c\nd\te\u{1}f";
        let wire = format!("\"{}\"", escape(hairy));
        assert_eq!(parse(wire.as_bytes()).unwrap(), Json::Str(hairy.to_string()));
    }
}

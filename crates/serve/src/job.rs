//! Job specification: the wire format clients POST and its canonical
//! cache key.
//!
//! Validation happens here so every route (and the 400 body) can report
//! a *field-level* error: `"field 'shards': must be between 1 and 64"`,
//! not just "bad request". What counts as a valid scheme or trace name
//! is the caller's business — the service layer resolves those against
//! the protocol registry — but the structural rules (types, ranges,
//! unknown fields) live in the crate so they are testable without a
//! simulator.

use crate::json::{self, Json};

/// Which replay engine a job asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobEngine {
    /// Dynamic-dispatch replay loop.
    Dyn,
    /// Monomorphized replay loop (the default: it is the fast path).
    Mono,
}

impl JobEngine {
    pub fn label(self) -> &'static str {
        match self {
            JobEngine::Dyn => "dyn",
            JobEngine::Mono => "mono",
        }
    }
}

/// One simulation request.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Directory-scheme name, e.g. `"DirB(1)"` or `"tang"`.
    pub scheme: String,
    /// Trace profile name: `POPS`, `THOR` or `PERO` (case-insensitive).
    pub trace: String,
    /// Synthetic trace length; `None` = the profile's paper-scale total.
    pub refs: Option<u64>,
    /// Generator seed.
    pub seed: u64,
    /// `"full"` or `"no-spins"`.
    pub filter: String,
    /// Block shards for parallel replay, 1..=64.
    pub shards: u64,
    /// Replay engine.
    pub engine: JobEngine,
    /// Window size for `/series` streaming; `None` = auto.
    pub window: Option<u64>,
}

/// A rejected job, naming the offending field.
#[derive(Debug, PartialEq, Eq)]
pub struct JobError {
    pub field: String,
    pub message: String,
}

impl JobError {
    fn new(field: &str, message: impl Into<String>) -> Self {
        JobError { field: field.to_string(), message: message.into() }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "field '{}': {}", self.field, self.message)
    }
}

/// Default generator seed — the paper's publication year, matching the
/// CLI default.
pub const DEFAULT_SEED: u64 = 1988;

const KNOWN_FIELDS: &[&str] =
    &["scheme", "trace", "refs", "seed", "filter", "shards", "engine", "window"];

impl JobSpec {
    /// Parses and validates a job body. Every failure names a field.
    pub fn from_json(body: &[u8]) -> Result<JobSpec, JobError> {
        let value =
            json::parse(body).map_err(|e| JobError::new("(body)", format!("invalid JSON: {e}")))?;
        let obj =
            value.as_obj().ok_or_else(|| JobError::new("(body)", "job must be a JSON object"))?;
        for key in obj.keys() {
            if !KNOWN_FIELDS.contains(&key.as_str()) {
                return Err(JobError::new(
                    key,
                    format!("unknown field (known fields: {})", KNOWN_FIELDS.join(", ")),
                ));
            }
        }

        let required_str = |field: &str| -> Result<String, JobError> {
            match obj.get(field) {
                Some(Json::Str(s)) if !s.is_empty() => Ok(s.clone()),
                Some(Json::Str(_)) => Err(JobError::new(field, "must not be empty")),
                Some(_) => Err(JobError::new(field, "must be a string")),
                None => Err(JobError::new(field, "is required")),
            }
        };
        let optional_u64 = |field: &str| -> Result<Option<u64>, JobError> {
            match obj.get(field) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => v
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| JobError::new(field, "must be a non-negative integer")),
            }
        };

        let scheme = required_str("scheme")?;
        let trace = required_str("trace")?;
        let refs = optional_u64("refs")?;
        if refs == Some(0) {
            return Err(JobError::new("refs", "must be at least 1"));
        }
        let seed = optional_u64("seed")?.unwrap_or(DEFAULT_SEED);
        let filter = match obj.get("filter") {
            None | Some(Json::Null) => "full".to_string(),
            Some(Json::Str(s)) if s == "full" || s == "no-spins" => s.clone(),
            Some(Json::Str(s)) => {
                return Err(JobError::new(
                    "filter",
                    format!("must be 'full' or 'no-spins', got {s:?}"),
                ))
            }
            Some(_) => return Err(JobError::new("filter", "must be a string")),
        };
        let shards = optional_u64("shards")?.unwrap_or(1);
        if !(1..=64).contains(&shards) {
            return Err(JobError::new("shards", "must be between 1 and 64"));
        }
        let engine = match obj.get("engine") {
            None | Some(Json::Null) => JobEngine::Mono,
            Some(Json::Str(s)) if s == "mono" => JobEngine::Mono,
            Some(Json::Str(s)) if s == "dyn" => JobEngine::Dyn,
            Some(Json::Str(s)) => {
                return Err(JobError::new("engine", format!("must be 'mono' or 'dyn', got {s:?}")))
            }
            Some(_) => return Err(JobError::new("engine", "must be a string")),
        };
        let window = optional_u64("window")?;
        if window == Some(0) {
            return Err(JobError::new("window", "must be at least 1"));
        }

        Ok(JobSpec { scheme, trace, refs, seed, filter, shards, engine, window })
    }

    /// The canonical cache key. Scheme and trace names are
    /// case-folded so `"tang"` and `"Tang"` share a cache entry; the
    /// window is *excluded* because it only shapes `/series` streaming,
    /// never the counters a `/run` response carries. Shards and engine
    /// are *included* even though results are bit-identical across them
    /// — the cache also memoizes which execution produced the spans, and
    /// keeping the key total makes the bit-identity property something
    /// CI asserts rather than something the cache assumes.
    pub fn canonical(&self) -> String {
        format!(
            "scheme={};trace={};refs={};seed={};filter={};shards={};engine={}",
            self.scheme.to_ascii_lowercase(),
            self.trace.to_ascii_lowercase(),
            self.refs.map_or_else(|| "profile".to_string(), |n| n.to_string()),
            self.seed,
            self.filter,
            self.shards,
            self.engine.label(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(body: &str) -> Result<JobSpec, JobError> {
        JobSpec::from_json(body.as_bytes())
    }

    #[test]
    fn minimal_job_gets_defaults() {
        let j = job(r#"{"scheme": "DirB(1)", "trace": "POPS"}"#).expect("valid");
        assert_eq!(j.scheme, "DirB(1)");
        assert_eq!(j.trace, "POPS");
        assert_eq!(j.refs, None);
        assert_eq!(j.seed, DEFAULT_SEED);
        assert_eq!(j.filter, "full");
        assert_eq!(j.shards, 1);
        assert_eq!(j.engine, JobEngine::Mono);
        assert_eq!(j.window, None);
    }

    #[test]
    fn full_job_parses() {
        let j = job(r#"{"scheme": "tang", "trace": "pero", "refs": 50000, "seed": 7,
                "filter": "no-spins", "shards": 8, "engine": "dyn", "window": 1000}"#)
        .expect("valid");
        assert_eq!(j.refs, Some(50_000));
        assert_eq!(j.seed, 7);
        assert_eq!(j.filter, "no-spins");
        assert_eq!(j.shards, 8);
        assert_eq!(j.engine, JobEngine::Dyn);
        assert_eq!(j.window, Some(1000));
    }

    #[test]
    fn errors_name_the_field() {
        for (body, field) in [
            (r#"{"trace": "POPS"}"#, "scheme"),
            (r#"{"scheme": "", "trace": "POPS"}"#, "scheme"),
            (r#"{"scheme": 3, "trace": "POPS"}"#, "scheme"),
            (r#"{"scheme": "Tang"}"#, "trace"),
            (r#"{"scheme": "Tang", "trace": "POPS", "refs": 0}"#, "refs"),
            (r#"{"scheme": "Tang", "trace": "POPS", "refs": -1}"#, "refs"),
            (r#"{"scheme": "Tang", "trace": "POPS", "filter": "spins"}"#, "filter"),
            (r#"{"scheme": "Tang", "trace": "POPS", "shards": 0}"#, "shards"),
            (r#"{"scheme": "Tang", "trace": "POPS", "shards": 65}"#, "shards"),
            (r#"{"scheme": "Tang", "trace": "POPS", "engine": "turbo"}"#, "engine"),
            (r#"{"scheme": "Tang", "trace": "POPS", "window": 0}"#, "window"),
            (r#"{"scheme": "Tang", "trace": "POPS", "color": "red"}"#, "color"),
        ] {
            let err = job(body).expect_err(body);
            assert_eq!(err.field, field, "{body}: {err}");
        }
    }

    #[test]
    fn body_level_errors_use_the_body_pseudo_field() {
        assert_eq!(job("nonsense").unwrap_err().field, "(body)");
        assert_eq!(job(r#"[1, 2]"#).unwrap_err().field, "(body)");
    }

    #[test]
    fn canonical_key_folds_case_and_skips_window() {
        let a = job(r#"{"scheme": "Tang", "trace": "POPS", "window": 10}"#).unwrap();
        let b = job(r#"{"scheme": "tang", "trace": "pops", "window": 999}"#).unwrap();
        assert_eq!(a.canonical(), b.canonical());
        let c = job(r#"{"scheme": "tang", "trace": "pops", "shards": 2}"#).unwrap();
        assert_ne!(a.canonical(), c.canonical(), "shards are part of the key");
    }

    #[test]
    fn canonical_key_distinguishes_profile_scale_from_explicit_refs() {
        let auto = job(r#"{"scheme": "Tang", "trace": "POPS"}"#).unwrap();
        let explicit = job(r#"{"scheme": "Tang", "trace": "POPS", "refs": 3200000}"#).unwrap();
        assert_ne!(auto.canonical(), explicit.canonical());
    }
}

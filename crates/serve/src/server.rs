//! The serve daemon: accept loop, worker threadpool, router.
//!
//! Thread layout: the calling thread runs the accept loop; `workers`
//! scoped threads block on the connection queue. The accept thread
//! never simulates — when the queue is full it answers 429 inline and
//! moves on, so backpressure costs the peer a retry, not the server a
//! thread. Shutdown is cooperative (`POST /shutdown`): the workspace
//! denies `unsafe_code`, so a raw SIGTERM handler is off the table —
//! process supervisors should send the endpoint a request (CI does) or
//! SIGKILL after a drain window.
//!
//! Telemetry: every connection gets a request ID at accept time
//! (`{prefix:08x}-{seq:08x}`; a sane client-supplied `x-request-id`
//! wins). The ID rides the queue, is echoed on every response as
//! `x-request-id`, appears in the structured log line, and is passed to
//! the [`JobHandler`] so span exports are joinable against logs. All
//! instruments live on one [`MetricsRegistry`] rendered at
//! `GET /metrics`; the result cache increments the registry's own
//! counters, so a scrape reconciles exactly against the served load.
//!
//! Simulation lives behind [`JobHandler`] so this crate stays free of a
//! dependency on the simulator (the `dircc` binary lives in
//! `dircc-sim`, which depends on this crate — an edge back would be a
//! package cycle).

use std::io::{BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};

use dircc_obs::MetricsRegistry;

use crate::cache::{CacheCounters, ResultCache};
use crate::http::{read_request, write_response, write_response_typed, ChunkedBody, Request};
use crate::job::JobSpec;
use crate::json::escape;
use crate::logger::Logger;
use crate::metrics::ServerMetrics;
use crate::queue::{Bounded, PushError};

/// A job the handler could not serve, carrying the HTTP status to
/// relay (400 for unresolvable names, 500 for internal faults).
#[derive(Debug, Clone)]
pub struct HandlerError {
    pub status: u16,
    pub message: String,
}

impl HandlerError {
    pub fn bad_request(message: impl Into<String>) -> Self {
        HandlerError { status: 400, message: message.into() }
    }

    pub fn internal(message: impl Into<String>) -> Self {
        HandlerError { status: 500, message: message.into() }
    }
}

/// What the service does when a request reaches it. Implemented by the
/// simulator (`dircc-sim`); implemented by stubs in this crate's tests.
/// `request_id` is the ID the response will carry — handlers stamp it
/// into their span metadata so `/spans` joins against logs and headers.
pub trait JobHandler: Send + Sync {
    /// Runs (or reuses) a simulation, returning the complete `/run`
    /// response body — a single JSON line.
    fn run(&self, job: &JobSpec, request_id: &str) -> Result<String, HandlerError>;

    /// Returns the windowed run-series JSONL lines for `/series`.
    fn series(&self, job: &JobSpec, request_id: &str) -> Result<Vec<String>, HandlerError>;

    /// Returns the chrome-trace span export for `/spans`.
    fn spans(&self) -> String;
}

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads simulating and answering requests.
    pub workers: usize,
    /// LRU result-cache capacity (canonical run configs).
    pub cache_entries: usize,
    /// Accepted-connection queue depth before 429s start.
    pub queue_depth: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Emit one stderr log line per request.
    pub log: bool,
    /// Structured JSON-lines logs instead of text (`--log-json`).
    pub log_json: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            cache_entries: 64,
            queue_depth: 64,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            log: true,
            log_json: false,
        }
    }
}

/// Totals reported when the daemon drains and [`Server::run`] returns.
#[derive(Debug, Clone, Copy)]
pub struct ServeStats {
    pub requests: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
}

/// An accepted connection waiting for a worker, carrying the request
/// ID minted at accept time.
struct Conn {
    stream: TcpStream,
    id: String,
}

/// A bound-but-not-yet-serving daemon.
pub struct Server {
    listener: TcpListener,
    shared: Shared,
}

struct Shared {
    config: ServeConfig,
    handler: Arc<dyn JobHandler>,
    cache: ResultCache,
    queue: Bounded<Conn>,
    draining: AtomicBool,
    requests: AtomicU64,
    completed: AtomicU64,
    local: SocketAddr,
    metrics: ServerMetrics,
    logger: Logger,
    started: Instant,
    id_prefix: u32,
    id_seq: AtomicU64,
}

fn error_body(message: &str) -> String {
    format!("{{\"error\": \"{}\"}}\n", escape(message))
}

/// A client-supplied `x-request-id` is honored only when it's safe to
/// echo into headers and logs: short, printable ASCII, no whitespace.
fn sane_request_id(v: &str) -> bool {
    !v.is_empty() && v.len() <= 64 && v.bytes().all(|b| b.is_ascii_graphic())
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) with a
    /// private metrics registry.
    pub fn bind(
        addr: &str,
        config: ServeConfig,
        handler: Arc<dyn JobHandler>,
    ) -> std::io::Result<Server> {
        Server::bind_with_registry(addr, config, handler, Arc::new(MetricsRegistry::new()))
    }

    /// Binds with a caller-owned registry, so the handler can register
    /// its own families (workbench runs, refs replayed) on the same
    /// `/metrics` page.
    pub fn bind_with_registry(
        addr: &str,
        config: ServeConfig,
        handler: Arc<dyn JobHandler>,
        registry: Arc<MetricsRegistry>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let queue = Bounded::new(config.queue_depth);
        let metrics = ServerMetrics::new(registry);
        // The cache increments the registry's counters directly — a
        // `/metrics` scrape and `ResultCache::stats` can never drift.
        let cache = ResultCache::with_counters(
            config.cache_entries,
            CacheCounters {
                hits: metrics.cache_hits.clone(),
                misses: metrics.cache_misses.clone(),
                evictions: metrics.cache_evictions.clone(),
                coalesced: metrics.singleflight_coalesced.clone(),
            },
        );
        let logger = if config.log { Logger::stderr(config.log_json) } else { Logger::disabled() };
        let id_prefix = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0)
            ^ std::process::id();
        Ok(Server {
            listener,
            shared: Shared {
                config,
                handler,
                cache,
                queue,
                draining: AtomicBool::new(false),
                requests: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                local,
                metrics,
                logger,
                started: Instant::now(),
                id_prefix,
                id_seq: AtomicU64::new(1),
            },
        })
    }

    /// The bound address — the real port when `addr` asked for `:0`.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local
    }

    /// Serves until a `POST /shutdown` drains the daemon. Blocking.
    pub fn run(self) -> ServeStats {
        let shared = &self.shared;
        std::thread::scope(|scope| {
            for _ in 0..shared.config.workers.max(1) {
                scope.spawn(move || {
                    while let Some(conn) = shared.queue.pop() {
                        shared.handle_connection(conn);
                    }
                });
            }
            self.accept_loop(shared);
            // Leaving the scope joins the workers, which drain the
            // queue (closed by /shutdown) before exiting.
        });
        let (cache_hits, cache_misses) = shared.cache.stats();
        ServeStats { requests: shared.requests.load(Ordering::Relaxed), cache_hits, cache_misses }
    }

    fn accept_loop(&self, shared: &Shared) {
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(_) if shared.draining.load(Ordering::SeqCst) => return,
                Err(_) => {
                    // Transient accept failure (e.g. fd pressure):
                    // back off briefly rather than spin.
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            };
            let id = shared.next_request_id();
            if shared.draining.load(Ordering::SeqCst) {
                // Includes the self-connection /shutdown makes to wake
                // this loop; real late arrivals get a 503.
                shared.refuse(stream, &id, 503, &[], "server is draining");
                return;
            }
            match shared.queue.try_push(Conn { stream, id }) {
                Ok(()) => shared.metrics.queue_depth.inc(),
                Err(PushError::Full(conn)) => {
                    shared.refuse(
                        conn.stream,
                        &conn.id,
                        429,
                        &[("Retry-After", "1")],
                        "job queue is full, retry shortly",
                    );
                }
                Err(PushError::Closed(conn)) => {
                    shared.refuse(conn.stream, &conn.id, 503, &[], "server is draining");
                    return;
                }
            }
        }
    }
}

impl Shared {
    fn next_request_id(&self) -> String {
        let seq = self.id_seq.fetch_add(1, Ordering::Relaxed);
        format!("{:08x}-{:08x}", self.id_prefix, seq as u32)
    }

    /// Answers a connection the queue never saw (backpressure or
    /// drain). Consumes what the peer already sent first so the
    /// response isn't lost to a connection reset. Refusals count under
    /// `dircc_http_refused_total`, never the per-route families — a
    /// scrape's route counters reconcile against *served* requests.
    fn refuse(
        &self,
        stream: TcpStream,
        id: &str,
        status: u16,
        extra: &[(&str, &str)],
        message: &str,
    ) {
        if status == 429 {
            self.metrics.refused_429.inc();
        } else {
            self.metrics.refused_503.inc();
        }
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        let _ = stream.set_write_timeout(Some(self.config.write_timeout));
        let mut sink = [0u8; 4096];
        let _ = (&stream).read(&mut sink);
        let body = error_body(message);
        let mut headers = extra.to_vec();
        headers.push(("x-request-id", id));
        let _ = write_response(&mut &stream, status, &headers, body.as_bytes());
        self.logger.warn(
            "refused",
            &[("status", status.into()), ("reason", message.into()), ("request_id", id.into())],
        );
    }

    fn handle_connection(&self, conn: Conn) {
        self.metrics.queue_depth.dec();
        self.metrics.inflight.inc();
        let Conn { stream, id } = conn;
        let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "-".to_string());
        let _ = stream.set_read_timeout(Some(self.config.read_timeout));
        let _ = stream.set_write_timeout(Some(self.config.write_timeout));
        let started = Instant::now();
        let mut reader = BufReader::new(&stream);
        match read_request(&mut reader) {
            Ok(request) => {
                // A sane client-supplied ID replaces the accept-time one
                // so callers can correlate their own retries.
                let id = request
                    .header("x-request-id")
                    .filter(|v| sane_request_id(v))
                    .map(str::to_string)
                    .unwrap_or(id);
                self.requests.fetch_add(1, Ordering::Relaxed);
                self.metrics.mark_request(&request.path);
                let (status, cache) = self.route(&request, &stream, &id);
                let wall = started.elapsed();
                self.metrics.observe_request(&request.path, status, wall);
                self.completed.fetch_add(1, Ordering::Relaxed);
                self.logger.info(
                    "request",
                    &[
                        ("method", request.method.as_str().into()),
                        ("path", request.path.as_str().into()),
                        ("status", status.into()),
                        ("wall_ms", (wall.as_secs_f64() * 1e3).into()),
                        ("cache", cache.into()),
                        ("peer", peer.as_str().into()),
                        ("request_id", id.as_str().into()),
                    ],
                );
            }
            Err(e) => {
                if let Some(status) = e.status() {
                    let body = error_body(&e.to_string());
                    let _ = write_response(
                        &mut &stream,
                        status,
                        &[("x-request-id", &id)],
                        body.as_bytes(),
                    );
                    // No parsed path — account it under the catch-all
                    // route so protocol errors still show on /metrics.
                    self.metrics.mark_request("");
                    self.metrics.observe_request("", status, started.elapsed());
                    self.logger.warn(
                        "bad_request",
                        &[
                            ("status", status.into()),
                            ("error", e.to_string().into()),
                            ("peer", peer.as_str().into()),
                            ("request_id", id.as_str().into()),
                        ],
                    );
                }
            }
        }
        self.metrics.inflight.dec();
    }

    /// The `/health` (and legacy `/healthz`) body: real daemon state,
    /// first key pinned to `"status"` for trivial grepping.
    fn health_body(&self) -> String {
        let (hits, misses, evictions, coalesced) = self.cache.detailed_stats();
        let status = if self.draining.load(Ordering::SeqCst) { "draining" } else { "ok" };
        format!(
            "{{\"status\": \"{status}\", \"uptime_s\": {}, \"workers\": {}, \"queued\": {}, \
             \"inflight\": {}, \"requests\": {}, \"completed\": {}, \"cache_hits\": {hits}, \
             \"cache_misses\": {misses}, \"cache_evictions\": {evictions}, \
             \"coalesced\": {coalesced}}}\n",
            self.started.elapsed().as_secs(),
            self.config.workers,
            self.queue.len(),
            self.metrics.inflight.get().max(0),
            self.requests.load(Ordering::Relaxed),
            self.completed.load(Ordering::Relaxed),
        )
    }

    fn route(&self, request: &Request, stream: &TcpStream, id: &str) -> (u16, &'static str) {
        let mut w = stream;
        let respond = |w: &mut &TcpStream, status: u16, body: &str| -> u16 {
            let _ = write_response(w, status, &[("x-request-id", id)], body.as_bytes());
            status
        };
        let method_not_allowed = |w: &mut &TcpStream, allowed: &str| -> (u16, &'static str) {
            let body = error_body(&format!("method not allowed, use {allowed}"));
            let _ = write_response(
                w,
                405,
                &[("Allow", allowed), ("x-request-id", id)],
                body.as_bytes(),
            );
            (405, "-")
        };

        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/health" | "/healthz") => (respond(&mut w, 200, &self.health_body()), "-"),
            (_, "/health" | "/healthz") => method_not_allowed(&mut w, "GET"),
            ("GET", "/metrics") => {
                self.metrics
                    .uptime
                    .set(self.started.elapsed().as_secs().min(i64::MAX as u64) as i64);
                let body = self.metrics.registry().render();
                let _ = write_response_typed(
                    &mut w,
                    200,
                    &[("x-request-id", id)],
                    "text/plain; version=0.0.4; charset=utf-8",
                    body.as_bytes(),
                );
                (200, "-")
            }
            (_, "/metrics") => method_not_allowed(&mut w, "GET"),
            ("POST", "/run") => {
                let job = match JobSpec::from_json(&request.body) {
                    Ok(job) => job,
                    Err(e) => return (respond(&mut w, 400, &error_body(&e.to_string())), "-"),
                };
                let (result, outcome) = self.cache.get_or_fill(&job.canonical(), || {
                    self.handler.run(&job, id).map_err(|e| (e.status, e.message))
                });
                match result {
                    Ok(body) => {
                        let label = outcome.wire_label();
                        let _ = write_response(
                            &mut w,
                            200,
                            &[("X-Cache", label), ("x-request-id", id)],
                            body.as_bytes(),
                        );
                        (200, label)
                    }
                    Err((status, message)) => (respond(&mut w, status, &error_body(&message)), "-"),
                }
            }
            (_, "/run") => method_not_allowed(&mut w, "POST"),
            ("POST", "/series") => {
                let job = match JobSpec::from_json(&request.body) {
                    Ok(job) => job,
                    Err(e) => return (respond(&mut w, 400, &error_body(&e.to_string())), "-"),
                };
                match self.handler.series(&job, id) {
                    Ok(lines) => {
                        let mut write_all = || -> std::io::Result<()> {
                            let mut body =
                                ChunkedBody::begin(&mut w, 200, &[("x-request-id", id)])?;
                            for line in &lines {
                                body.write_chunk(line.as_bytes())?;
                            }
                            body.finish()
                        };
                        let _ = write_all();
                        (200, "-")
                    }
                    Err(e) => (respond(&mut w, e.status, &error_body(&e.message)), "-"),
                }
            }
            (_, "/series") => method_not_allowed(&mut w, "POST"),
            ("GET", "/spans") => (respond(&mut w, 200, &self.handler.spans()), "-"),
            (_, "/spans") => method_not_allowed(&mut w, "GET"),
            ("POST", "/shutdown") => {
                self.draining.store(true, Ordering::SeqCst);
                let status = respond(&mut w, 200, "{\"status\": \"draining\"}\n");
                self.queue.close();
                // Wake the accept loop so it observes the drain flag.
                let _ = TcpStream::connect(self.local);
                (status, "-")
            }
            (_, "/shutdown") => method_not_allowed(&mut w, "POST"),
            (_, path) => {
                let body = error_body(&format!(
                    "unknown route {path:?} (routes: /health /healthz /metrics /run /series \
                     /spans /shutdown)"
                ));
                (respond(&mut w, 404, &body), "-")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bodies_escape_their_message() {
        assert_eq!(error_body("a\"b"), "{\"error\": \"a\\\"b\"}\n");
    }

    #[test]
    fn handler_error_constructors_carry_status() {
        assert_eq!(HandlerError::bad_request("x").status, 400);
        assert_eq!(HandlerError::internal("x").status, 500);
    }

    #[test]
    fn client_request_ids_are_vetted() {
        assert!(sane_request_id("ab12cd34-00000001"));
        assert!(sane_request_id("trace-7"));
        assert!(!sane_request_id(""));
        assert!(!sane_request_id("has space"));
        assert!(!sane_request_id("new\nline"));
        assert!(!sane_request_id(&"x".repeat(65)));
        assert!(!sane_request_id("non-ascii-é"));
    }
}

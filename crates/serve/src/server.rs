//! The serve daemon: accept loop, worker threadpool, router.
//!
//! Thread layout: the calling thread runs the accept loop; `workers`
//! scoped threads block on the connection queue. The accept thread
//! never simulates — when the queue is full it answers 429 inline and
//! moves on, so backpressure costs the peer a retry, not the server a
//! thread. Shutdown is cooperative (`POST /shutdown`): the workspace
//! denies `unsafe_code`, so a raw SIGTERM handler is off the table —
//! process supervisors should send the endpoint a request (CI does) or
//! SIGKILL after a drain window.
//!
//! Simulation lives behind [`JobHandler`] so this crate stays free of a
//! dependency on the simulator (the `dircc` binary lives in
//! `dircc-sim`, which depends on this crate — an edge back would be a
//! package cycle).

use std::io::{BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::cache::ResultCache;
use crate::http::{read_request, write_response, ChunkedBody, Request};
use crate::job::JobSpec;
use crate::json::escape;
use crate::queue::{Bounded, PushError};

/// A job the handler could not serve, carrying the HTTP status to
/// relay (400 for unresolvable names, 500 for internal faults).
#[derive(Debug, Clone)]
pub struct HandlerError {
    pub status: u16,
    pub message: String,
}

impl HandlerError {
    pub fn bad_request(message: impl Into<String>) -> Self {
        HandlerError { status: 400, message: message.into() }
    }

    pub fn internal(message: impl Into<String>) -> Self {
        HandlerError { status: 500, message: message.into() }
    }
}

/// What the service does when a request reaches it. Implemented by the
/// simulator (`dircc-sim`); implemented by stubs in this crate's tests.
pub trait JobHandler: Send + Sync {
    /// Runs (or reuses) a simulation, returning the complete `/run`
    /// response body — a single JSON line.
    fn run(&self, job: &JobSpec) -> Result<String, HandlerError>;

    /// Returns the windowed run-series JSONL lines for `/series`.
    fn series(&self, job: &JobSpec) -> Result<Vec<String>, HandlerError>;

    /// Returns the chrome-trace span export for `/spans`.
    fn spans(&self) -> String;
}

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads simulating and answering requests.
    pub workers: usize,
    /// LRU result-cache capacity (canonical run configs).
    pub cache_entries: usize,
    /// Accepted-connection queue depth before 429s start.
    pub queue_depth: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Emit one stderr log line per request.
    pub log: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            cache_entries: 64,
            queue_depth: 64,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            log: true,
        }
    }
}

/// Totals reported when the daemon drains and [`Server::run`] returns.
#[derive(Debug, Clone, Copy)]
pub struct ServeStats {
    pub requests: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
}

/// A bound-but-not-yet-serving daemon.
pub struct Server {
    listener: TcpListener,
    shared: Shared,
}

struct Shared {
    config: ServeConfig,
    handler: Arc<dyn JobHandler>,
    cache: ResultCache,
    queue: Bounded<TcpStream>,
    draining: AtomicBool,
    requests: AtomicU64,
    local: SocketAddr,
}

fn error_body(message: &str) -> String {
    format!("{{\"error\": \"{}\"}}\n", escape(message))
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    pub fn bind(
        addr: &str,
        config: ServeConfig,
        handler: Arc<dyn JobHandler>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let queue = Bounded::new(config.queue_depth);
        let cache = ResultCache::new(config.cache_entries);
        Ok(Server {
            listener,
            shared: Shared {
                config,
                handler,
                cache,
                queue,
                draining: AtomicBool::new(false),
                requests: AtomicU64::new(0),
                local,
            },
        })
    }

    /// The bound address — the real port when `addr` asked for `:0`.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local
    }

    /// Serves until a `POST /shutdown` drains the daemon. Blocking.
    pub fn run(self) -> ServeStats {
        let shared = &self.shared;
        std::thread::scope(|scope| {
            for _ in 0..shared.config.workers.max(1) {
                scope.spawn(move || {
                    while let Some(stream) = shared.queue.pop() {
                        shared.handle_connection(stream);
                    }
                });
            }
            self.accept_loop(shared);
            // Leaving the scope joins the workers, which drain the
            // queue (closed by /shutdown) before exiting.
        });
        let (cache_hits, cache_misses) = shared.cache.stats();
        ServeStats { requests: shared.requests.load(Ordering::Relaxed), cache_hits, cache_misses }
    }

    fn accept_loop(&self, shared: &Shared) {
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(_) if shared.draining.load(Ordering::SeqCst) => return,
                Err(_) => {
                    // Transient accept failure (e.g. fd pressure):
                    // back off briefly rather than spin.
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            };
            if shared.draining.load(Ordering::SeqCst) {
                // Includes the self-connection /shutdown makes to wake
                // this loop; real late arrivals get a 503.
                shared.refuse(stream, 503, &[], "server is draining");
                return;
            }
            match shared.queue.try_push(stream) {
                Ok(()) => {}
                Err(PushError::Full(stream)) => {
                    shared.refuse(
                        stream,
                        429,
                        &[("Retry-After", "1")],
                        "job queue is full, retry shortly",
                    );
                }
                Err(PushError::Closed(stream)) => {
                    shared.refuse(stream, 503, &[], "server is draining");
                    return;
                }
            }
        }
    }
}

impl Shared {
    /// Answers a connection the queue never saw (backpressure or
    /// drain). Consumes what the peer already sent first so the
    /// response isn't lost to a connection reset.
    fn refuse(&self, stream: TcpStream, status: u16, extra: &[(&str, &str)], message: &str) {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        let _ = stream.set_write_timeout(Some(self.config.write_timeout));
        let mut sink = [0u8; 4096];
        let _ = (&stream).read(&mut sink);
        let body = error_body(message);
        let _ = write_response(&mut &stream, status, extra, body.as_bytes());
        self.log("-", "-", "-", status, None, "-");
    }

    fn handle_connection(&self, stream: TcpStream) {
        let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "-".to_string());
        let _ = stream.set_read_timeout(Some(self.config.read_timeout));
        let _ = stream.set_write_timeout(Some(self.config.write_timeout));
        let started = Instant::now();
        let mut reader = BufReader::new(&stream);
        let request = match read_request(&mut reader) {
            Ok(request) => request,
            Err(e) => {
                if let Some(status) = e.status() {
                    let body = error_body(&e.to_string());
                    let _ = write_response(&mut &stream, status, &[], body.as_bytes());
                    self.log(&peer, "-", "-", status, Some(started), "-");
                }
                return;
            }
        };
        self.requests.fetch_add(1, Ordering::Relaxed);
        let (status, cache) = self.route(&request, &stream);
        self.log(&peer, &request.method, &request.path, status, Some(started), cache);
    }

    fn route(&self, request: &Request, stream: &TcpStream) -> (u16, &'static str) {
        let mut w = stream;
        let respond = |w: &mut &TcpStream, status: u16, body: &str| -> u16 {
            let _ = write_response(w, status, &[], body.as_bytes());
            status
        };
        let method_not_allowed = |w: &mut &TcpStream, allowed: &str| -> (u16, &'static str) {
            let body = error_body(&format!("method not allowed, use {allowed}"));
            let _ = write_response(w, 405, &[("Allow", allowed)], body.as_bytes());
            (405, "-")
        };

        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => {
                let (hits, misses) = self.cache.stats();
                let status = if self.draining.load(Ordering::SeqCst) { "draining" } else { "ok" };
                let body = format!(
                    "{{\"status\": \"{status}\", \"workers\": {}, \"queued\": {}, \
                     \"requests\": {}, \"cache_hits\": {hits}, \"cache_misses\": {misses}}}\n",
                    self.config.workers,
                    self.queue.len(),
                    self.requests.load(Ordering::Relaxed),
                );
                (respond(&mut w, 200, &body), "-")
            }
            (_, "/healthz") => method_not_allowed(&mut w, "GET"),
            ("POST", "/run") => {
                let job = match JobSpec::from_json(&request.body) {
                    Ok(job) => job,
                    Err(e) => return (respond(&mut w, 400, &error_body(&e.to_string())), "-"),
                };
                let (result, outcome) = self.cache.get_or_fill(&job.canonical(), || {
                    self.handler.run(&job).map_err(|e| (e.status, e.message))
                });
                match result {
                    Ok(body) => {
                        let label = outcome.wire_label();
                        let _ = write_response(&mut w, 200, &[("X-Cache", label)], body.as_bytes());
                        (200, label)
                    }
                    Err((status, message)) => (respond(&mut w, status, &error_body(&message)), "-"),
                }
            }
            (_, "/run") => method_not_allowed(&mut w, "POST"),
            ("POST", "/series") => {
                let job = match JobSpec::from_json(&request.body) {
                    Ok(job) => job,
                    Err(e) => return (respond(&mut w, 400, &error_body(&e.to_string())), "-"),
                };
                match self.handler.series(&job) {
                    Ok(lines) => {
                        let mut write_all = || -> std::io::Result<()> {
                            let mut body = ChunkedBody::begin(&mut w, 200, &[])?;
                            for line in &lines {
                                body.write_chunk(line.as_bytes())?;
                            }
                            body.finish()
                        };
                        let _ = write_all();
                        (200, "-")
                    }
                    Err(e) => (respond(&mut w, e.status, &error_body(&e.message)), "-"),
                }
            }
            (_, "/series") => method_not_allowed(&mut w, "POST"),
            ("GET", "/spans") => (respond(&mut w, 200, &self.handler.spans()), "-"),
            (_, "/spans") => method_not_allowed(&mut w, "GET"),
            ("POST", "/shutdown") => {
                self.draining.store(true, Ordering::SeqCst);
                let status = respond(&mut w, 200, "{\"status\": \"draining\"}\n");
                self.queue.close();
                // Wake the accept loop so it observes the drain flag.
                let _ = TcpStream::connect(self.local);
                (status, "-")
            }
            (_, "/shutdown") => method_not_allowed(&mut w, "POST"),
            (_, path) => {
                let body = error_body(&format!(
                    "unknown route {path:?} (routes: /healthz /run /series /spans /shutdown)"
                ));
                (respond(&mut w, 404, &body), "-")
            }
        }
    }

    fn log(
        &self,
        peer: &str,
        method: &str,
        path: &str,
        status: u16,
        started: Option<Instant>,
        cache: &str,
    ) {
        if !self.config.log {
            return;
        }
        let wall = started.map_or_else(
            || "-".to_string(),
            |t| format!("{:.1}ms", t.elapsed().as_secs_f64() * 1e3),
        );
        eprintln!("serve: {peer} \"{method} {path}\" {status} {wall} cache={cache}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bodies_escape_their_message() {
        assert_eq!(error_body("a\"b"), "{\"error\": \"a\\\"b\"}\n");
    }

    #[test]
    fn handler_error_constructors_carry_status() {
        assert_eq!(HandlerError::bad_request("x").status, 400);
        assert_eq!(HandlerError::internal("x").status, 500);
    }
}

//! # dircc-check
//!
//! Bounded exhaustive state-space exploration of the dircc coherence
//! protocols.
//!
//! The replay-time `Verifier` in `dircc-sim` can only witness states the
//! synthetic traces happen to reach. This crate instead enumerates *every*
//! interleaving of `{read, write, evict} × N cpus × M blocks` up to a
//! depth bound — breadth-first, deduplicating canonicalized states — and
//! asserts at every transition:
//!
//! * **SWMR** — after a write under an invalidation protocol, the writer
//!   holds the only copy (no readers alongside a writable copy);
//! * **directory/cache agreement** — every protocol's own
//!   [`Protocol::check_invariants`] (pointer sets, dirty bits, broadcast
//!   bits and coded sets versus the actual cache contents);
//! * **data-value coherence** — the version-tag technique of the sim
//!   `Verifier`, mirrored transition-for-transition: reads must observe
//!   the latest version, misses must be supplied current data from the
//!   correct source, write-backs must refresh memory;
//! * **classification** — a first reference must be classified
//!   `FirstRef` and vice versa;
//! * **cost sanity** — every emitted outcome prices to finite,
//!   nonnegative cycle counts under both paper bus models.
//!
//! A violation is reported as a [`Counterexample`]: the exact (minimal,
//! by BFS order) op sequence from the initial state, replayable with
//! [`replay`].
//!
//! The state key includes the protocol's canonical encoding
//! ([`Protocol::encode_state`]), the first-reference set, and the full
//! version tables, so dedup never merges states the checker could still
//! distinguish.

use dircc_bus::{price, CostConfig, CostModel};
use dircc_core::{build, CoherenceStyle, Event, EventCounters, Protocol, ProtocolKind};
use dircc_types::{AccessKind, BlockAddr, CacheId};
use std::collections::HashSet;
use std::fmt;

/// Exploration bounds: the op alphabet is
/// `{read, write, evict} × cpus × blocks` and every sequence of up to
/// `depth` ops is covered (modulo state dedup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckConfig {
    /// Number of cpus (= caches) issuing ops.
    pub cpus: usize,
    /// Number of distinct blocks the ops touch.
    pub blocks: usize,
    /// Maximum op-sequence length.
    pub depth: usize,
}

impl Default for CheckConfig {
    /// The `dircc check` defaults: 3 cpus × 2 blocks × depth 8.
    fn default() -> Self {
        CheckConfig { cpus: 3, blocks: 2, depth: 8 }
    }
}

impl CheckConfig {
    /// A reduced configuration for CI smoke runs (seconds, not minutes).
    pub fn smoke() -> Self {
        CheckConfig { cpus: 2, blocks: 2, depth: 6 }
    }
}

/// What a single op does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Data read by a cpu.
    Read,
    /// Data write by a cpu.
    Write,
    /// Finite-cache replacement of a held block.
    Evict,
}

/// One step of an exploration path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// The acting cpu/cache.
    pub cache: CacheId,
    /// Read, write or evict.
    pub kind: OpKind,
    /// The block acted on.
    pub block: BlockAddr,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            OpKind::Read => 'R',
            OpKind::Write => 'W',
            OpKind::Evict => 'E',
        };
        write!(f, "C{} {k} b{}", self.cache.raw(), self.block.index())
    }
}

/// A minimal failing op sequence plus the invariant it violates.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Ops from the initial (empty) state, in order; the last op
    /// triggers the violation.
    pub ops: Vec<Op>,
    /// Human-readable description of the violated invariant.
    pub violation: String,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for op in &self.ops {
            if !first {
                f.write_str("; ")?;
            }
            write!(f, "{op}")?;
            first = false;
        }
        write!(f, " -> {}", self.violation)
    }
}

/// The result of exploring one scheme.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Paper-style scheme name (resolved against the cpu count).
    pub name: String,
    /// The taxonomy point checked.
    pub kind: ProtocolKind,
    /// Deduplicated reachable states (including the initial state).
    pub states: u64,
    /// Transitions taken (every op applied to every frontier state).
    pub transitions: u64,
    /// `None` if every invariant held at every reachable state.
    pub counterexample: Option<Counterexample>,
}

impl CheckReport {
    /// Did every reachable state satisfy every invariant?
    pub fn passed(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// The 12 protocol kinds `dircc check` explores by default: one point
/// per scheme family (`DirNb { 1 }` stands for the limited-pointer
/// family; the full map is Tang's state model).
pub fn default_kinds() -> [ProtocolKind; 12] {
    [
        ProtocolKind::DirNb { pointers: 1 },
        ProtocolKind::Dir0B,
        ProtocolKind::DirB { pointers: 1 },
        ProtocolKind::CodedSet,
        ProtocolKind::Tang,
        ProtocolKind::YenFu,
        ProtocolKind::Wti,
        ProtocolKind::Dragon,
        ProtocolKind::Berkeley,
        ProtocolKind::WriteOnce,
        ProtocolKind::Firefly,
        ProtocolKind::Mesi,
    ]
}

/// The sim `Verifier`'s version tables, mirrored exactly: a global
/// version per block bumped on every write, the version memory holds,
/// and the version each cache's copy last observed. Stale entries are
/// kept (not masked) just as the engine keeps them.
#[derive(Debug, Clone)]
struct Values {
    /// `version[b]`: latest version of block `b`.
    version: Vec<u64>,
    /// `memory[b]`: version main memory holds.
    memory: Vec<u64>,
    /// `copy[c][b]`: version cache `c` last observed for block `b`.
    copy: Vec<Vec<u64>>,
}

impl Values {
    fn new(cpus: usize, blocks: usize) -> Self {
        Values {
            version: vec![0; blocks],
            memory: vec![0; blocks],
            copy: vec![vec![0; blocks]; cpus],
        }
    }

    fn encode(&self, out: &mut Vec<u64>) {
        out.extend_from_slice(&self.version);
        out.extend_from_slice(&self.memory);
        for c in &self.copy {
            out.extend_from_slice(c);
        }
    }
}

/// One BFS node: protocol state, value model, first-reference set, path.
struct Node {
    protocol: Box<dyn Protocol>,
    values: Values,
    seen: u64,
    path: Vec<Op>,
}

fn state_key(protocol: &dyn Protocol, values: &Values, seen: u64) -> Vec<u64> {
    let mut key = Vec::with_capacity(48);
    protocol.encode_state(&mut key);
    key.push(seen);
    values.encode(&mut key);
    key
}

/// Prices `counters` under both paper bus models and reports the first
/// non-finite or negative cycle count.
fn check_costs(
    kind: ProtocolKind,
    n_caches: usize,
    counters: &EventCounters,
) -> Result<(), String> {
    for model in CostModel::paper_pair() {
        let breakdown = price(kind, n_caches, counters, &model, &CostConfig::PAPER);
        for (label, cycles) in breakdown.rows() {
            if !cycles.is_finite() || cycles < 0.0 {
                return Err(format!("cost row '{label}' is {cycles} under {model:?}"));
            }
        }
    }
    Ok(())
}

/// Applies `op` to `protocol`/`values`/`seen` and checks every invariant,
/// mirroring the engine's `verify_access` transition-for-transition.
fn step(
    protocol: &mut dyn Protocol,
    values: &mut Values,
    seen: &mut u64,
    op: Op,
) -> Result<(), String> {
    let b = op.block.index() as usize;
    let kind = protocol.kind();
    let n = protocol.num_caches();
    let mut counters = EventCounters::new();

    if op.kind == OpKind::Evict {
        let held = protocol.holders(op.block).contains(op.cache);
        let evo = protocol.evict(op.cache, op.block);
        counters.observe_eviction(&evo);
        if !held && (evo.write_back || evo.control_messages != 0) {
            return Err(format!("eviction of a non-held block cost {evo:?}"));
        }
        if protocol.holders(op.block).contains(op.cache) {
            return Err(format!("{} still holds b{b} after evicting it", op.cache));
        }
        if evo.write_back {
            // The evicted copy holds the latest data in every protocol
            // that answers WRITE_BACK (engine rule).
            values.memory[b] = values.copy[op.cache.index()][b];
            if values.memory[b] != values.version[b] {
                return Err(format!(
                    "eviction wrote back version {} of b{b}, latest is {}",
                    values.memory[b], values.version[b]
                ));
            }
        }
    } else {
        let access = match op.kind {
            OpKind::Read => AccessKind::Read,
            OpKind::Write => AccessKind::Write,
            OpKind::Evict => unreachable!("handled above"),
        };
        let first_ref = *seen & (1 << b) == 0;
        *seen |= 1 << b;
        let out = protocol.access(op.cache, access, op.block, first_ref);
        counters.observe(&out);
        if out.event.is_miss() && out.event.is_first_ref() != first_ref {
            return Err(format!(
                "first_ref={first_ref} but the miss was classified {}",
                out.event.label()
            ));
        }
        if first_ref && !out.event.is_miss() {
            return Err(format!("first reference classified as a hit ({})", out.event.label()));
        }
        let holders = protocol.holders(op.block);
        if !holders.contains(op.cache) {
            return Err(format!("{} accessed b{b} but is not a holder afterwards", op.cache));
        }
        match access {
            AccessKind::Write => {
                let new_ver = values.version[b] + 1;
                values.version[b] = new_ver;
                values.copy[op.cache.index()][b] = new_ver;
                if out.memory_updated {
                    values.memory[b] = new_ver;
                }
                match protocol.style() {
                    CoherenceStyle::Update => {
                        // Updates reach every current holder.
                        for h in holders.iter() {
                            values.copy[h.index()][b] = new_ver;
                        }
                    }
                    CoherenceStyle::Invalidate => {
                        // Single-writer: no other copy survives a write.
                        if holders.len() != 1 {
                            return Err(format!(
                                "invalidation protocol left {} copies of b{b} after a write",
                                holders.len()
                            ));
                        }
                    }
                }
            }
            AccessKind::Read => {
                let cur = values.version[b];
                match out.event {
                    Event::ReadHit => {
                        let held = values.copy[op.cache.index()][b];
                        if held != cur {
                            return Err(format!(
                                "read hit observed version {held} of b{b}, latest is {cur}"
                            ));
                        }
                    }
                    Event::ReadMiss(_) => {
                        if out.memory_updated {
                            values.memory[b] = cur;
                        }
                        let supplied = if out.cache_supplied || out.write_back {
                            cur
                        } else {
                            values.memory[b]
                        };
                        if supplied != cur {
                            return Err(format!(
                                "miss on b{b} supplied version {supplied}, latest is {cur}"
                            ));
                        }
                        values.copy[op.cache.index()][b] = supplied;
                    }
                    other => return Err(format!("read classified as {}", other.label())),
                }
            }
            AccessKind::InstrFetch => unreachable!("the op alphabet has no instruction fetches"),
        }
    }

    check_costs(kind, n, &counters)?;
    protocol.check_invariants().map_err(|e| format!("invariant violation: {e}"))
}

/// Explores `initial` under `cfg`. The protocol must implement
/// [`Protocol::encode_state`], [`Protocol::boxed_clone`] and
/// [`Protocol::evict`].
///
/// # Panics
///
/// Panics if `cfg.cpus`/`cfg.blocks` is 0 or `cfg.cpus` exceeds the
/// protocol's cache count.
pub fn check_boxed(initial: Box<dyn Protocol>, cfg: &CheckConfig) -> CheckReport {
    assert!(cfg.cpus >= 1 && cfg.blocks >= 1, "need at least one cpu and block");
    assert!(cfg.cpus <= initial.num_caches(), "more cpus than caches");
    assert!(cfg.blocks <= 64, "the first-reference set is a 64-bit mask");
    let name = initial.name();
    let kind = initial.kind();

    let mut ops = Vec::with_capacity(cfg.cpus * 3 * cfg.blocks);
    for cache in 0..cfg.cpus {
        for kind in [OpKind::Read, OpKind::Write, OpKind::Evict] {
            for block in 0..cfg.blocks {
                ops.push(Op {
                    cache: CacheId::new(cache as u16),
                    kind,
                    block: BlockAddr::from_index(block as u64),
                });
            }
        }
    }

    let values = Values::new(cfg.cpus, cfg.blocks);
    let mut visited: HashSet<Vec<u64>> = HashSet::new();
    visited.insert(state_key(initial.as_ref(), &values, 0));
    let mut frontier = vec![Node { protocol: initial, values, seen: 0, path: Vec::new() }];
    let mut transitions = 0u64;

    for _ in 0..cfg.depth {
        let mut next = Vec::new();
        for node in &frontier {
            for &op in &ops {
                // Evicting a non-held block is a silent no-op (a self
                // loop): skip it instead of exploring it.
                if op.kind == OpKind::Evict && !node.protocol.holders(op.block).contains(op.cache) {
                    continue;
                }
                transitions += 1;
                let mut protocol = node.protocol.boxed_clone();
                let mut values = node.values.clone();
                let mut seen = node.seen;
                if let Err(violation) = step(protocol.as_mut(), &mut values, &mut seen, op) {
                    let mut ops = node.path.clone();
                    ops.push(op);
                    return CheckReport {
                        name,
                        kind,
                        states: visited.len() as u64,
                        transitions,
                        counterexample: Some(Counterexample { ops, violation }),
                    };
                }
                if visited.insert(state_key(protocol.as_ref(), &values, seen)) {
                    let mut path = node.path.clone();
                    path.push(op);
                    next.push(Node { protocol, values, seen, path });
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break; // closed under the op alphabet before the depth bound
        }
    }

    CheckReport { name, kind, states: visited.len() as u64, transitions, counterexample: None }
}

/// Explores one taxonomy point built over `cfg.cpus` caches.
pub fn check_protocol(kind: ProtocolKind, cfg: &CheckConfig) -> CheckReport {
    check_boxed(build(kind, cfg.cpus), cfg)
}

/// Re-runs a counterexample's op sequence on a fresh protocol instance,
/// returning the violation it reproduces (`None` if every op passes —
/// which, for a genuine counterexample, indicates nondeterminism).
pub fn replay(mut protocol: Box<dyn Protocol>, cpus: usize, ops: &[Op]) -> Option<String> {
    let blocks = ops.iter().map(|op| op.block.index() as usize + 1).max().unwrap_or(1);
    let mut values = Values::new(cpus.max(protocol.num_caches()), blocks);
    let mut seen = 0u64;
    for op in ops {
        if let Err(violation) = step(protocol.as_mut(), &mut values, &mut seen, *op) {
            return Some(violation);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dircc_cache::CacheArray;
    use dircc_core::event::EvictOutcome;
    use dircc_core::Outcome;
    use dircc_types::CacheIdSet;

    fn smoke() -> CheckConfig {
        CheckConfig { cpus: 2, blocks: 2, depth: 5 }
    }

    #[test]
    fn every_default_kind_passes_the_smoke_config() {
        for kind in default_kinds() {
            let report = check_protocol(kind, &smoke());
            assert!(
                report.passed(),
                "{}: {}",
                report.name,
                report.counterexample.expect("failed report has a counterexample")
            );
            assert!(report.states > 50, "{}: only {} states", report.name, report.states);
        }
    }

    #[test]
    fn exploration_is_deterministic() {
        let a = check_protocol(ProtocolKind::Mesi, &smoke());
        let b = check_protocol(ProtocolKind::Mesi, &smoke());
        assert_eq!(a.states, b.states);
        assert_eq!(a.transitions, b.transitions);
    }

    #[test]
    fn op_and_counterexample_render_readably() {
        let ce = Counterexample {
            ops: vec![
                Op { cache: CacheId::new(0), kind: OpKind::Write, block: BlockAddr::from_index(0) },
                Op { cache: CacheId::new(1), kind: OpKind::Read, block: BlockAddr::from_index(1) },
                Op { cache: CacheId::new(1), kind: OpKind::Evict, block: BlockAddr::from_index(1) },
            ],
            violation: "boom".to_string(),
        };
        assert_eq!(ce.to_string(), "C0 W b0; C1 R b1; C1 E b1 -> boom");
    }

    /// A deliberately broken protocol: writes never invalidate the other
    /// copies (it claims a write-through update that never happens), so
    /// stale readers survive.
    #[derive(Debug, Clone)]
    struct NeverInvalidates {
        caches: CacheArray<()>,
    }

    impl Protocol for NeverInvalidates {
        fn kind(&self) -> ProtocolKind {
            ProtocolKind::Wti
        }
        fn num_caches(&self) -> usize {
            self.caches.num_caches()
        }
        fn access(
            &mut self,
            cache: CacheId,
            kind: AccessKind,
            block: BlockAddr,
            first_ref: bool,
        ) -> Outcome {
            use dircc_core::{MissContext, WriteHitContext};
            let hit = self.caches.state(cache, block).is_some();
            let ctx = if first_ref { MissContext::FirstRef } else { MissContext::MemoryOnly };
            self.caches.set(cache, block, ());
            // Bug: other holders keep their (now stale) copies, and the
            // write claims memory was updated without touching them.
            match (kind, hit) {
                (AccessKind::Read, true) => Outcome::quiet(Event::ReadHit),
                (AccessKind::Read, false) => Outcome::quiet(Event::ReadMiss(ctx)),
                (AccessKind::Write, true) => {
                    let mut out = Outcome::quiet(Event::WriteHit(WriteHitContext::Dirty));
                    out.memory_updated = true;
                    out
                }
                (AccessKind::Write, false) => {
                    let mut out = Outcome::quiet(Event::WriteMiss(ctx));
                    out.memory_updated = true;
                    out
                }
                (AccessKind::InstrFetch, _) => unreachable!(),
            }
        }
        fn evict(&mut self, cache: CacheId, block: BlockAddr) -> EvictOutcome {
            self.caches.remove(cache, block);
            EvictOutcome::SILENT
        }
        fn holders(&self, block: BlockAddr) -> CacheIdSet {
            self.caches.holders(block)
        }
        fn check_invariants(&self) -> Result<(), String> {
            self.caches.check_residency()
        }
        fn encode_state(&self, out: &mut Vec<u64>) {
            self.caches.encode_states(out, |()| 0);
        }
        fn boxed_clone(&self) -> Box<dyn Protocol> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn broken_protocol_yields_a_minimal_replayable_counterexample() {
        let cfg = CheckConfig::default();
        let report =
            check_boxed(Box::new(NeverInvalidates { caches: CacheArray::new(cfg.cpus) }), &cfg);
        let ce = report.counterexample.expect("the broken protocol must fail");
        assert!(ce.ops.len() <= cfg.depth, "counterexample longer than the depth bound");
        // SWMR breaks as soon as a writer leaves a second copy alive:
        // minimal sequences are 2 ops (e.g. C0 R b0; C1 W b0).
        assert_eq!(ce.ops.len(), 2, "BFS must find the shortest sequence: {ce}");
        let replayed = replay(
            Box::new(NeverInvalidates { caches: CacheArray::new(cfg.cpus) }),
            cfg.cpus,
            &ce.ops,
        )
        .expect("replay reproduces the violation");
        assert_eq!(replayed, ce.violation);
    }

    /// A protocol that silently loses dirty data on eviction: the value
    /// model (not SWMR) must catch the stale re-read.
    #[derive(Debug)]
    struct DropsDirtyData {
        inner: Box<dyn Protocol>,
    }

    impl DropsDirtyData {
        fn new(cpus: usize) -> Self {
            DropsDirtyData { inner: build(ProtocolKind::Berkeley, cpus) }
        }
    }

    impl Protocol for DropsDirtyData {
        fn kind(&self) -> ProtocolKind {
            self.inner.kind()
        }
        fn num_caches(&self) -> usize {
            self.inner.num_caches()
        }
        fn access(
            &mut self,
            cache: CacheId,
            kind: AccessKind,
            block: BlockAddr,
            first_ref: bool,
        ) -> Outcome {
            self.inner.access(cache, kind, block, first_ref)
        }
        fn evict(&mut self, cache: CacheId, block: BlockAddr) -> EvictOutcome {
            // Bug: the dirty owner drops its copy without writing back.
            let mut out = self.inner.evict(cache, block);
            out.write_back = false;
            out
        }
        fn holders(&self, block: BlockAddr) -> CacheIdSet {
            self.inner.holders(block)
        }
        fn check_invariants(&self) -> Result<(), String> {
            self.inner.check_invariants()
        }
        fn encode_state(&self, out: &mut Vec<u64>) {
            self.inner.encode_state(out);
        }
        fn boxed_clone(&self) -> Box<dyn Protocol> {
            Box::new(DropsDirtyData { inner: self.inner.boxed_clone() })
        }
    }

    #[test]
    fn lost_write_back_is_caught_by_the_value_model() {
        let cfg = CheckConfig::default();
        let report = check_boxed(Box::new(DropsDirtyData::new(cfg.cpus)), &cfg);
        let ce = report.counterexample.expect("dropping dirty data must fail");
        // W, E, then a re-read misses against stale memory: 3 ops.
        assert_eq!(ce.ops.len(), 3, "{ce}");
        assert!(ce.violation.contains("supplied version"), "{ce}");
        let replayed = replay(Box::new(DropsDirtyData::new(cfg.cpus)), cfg.cpus, &ce.ops)
            .expect("replay reproduces the violation");
        assert_eq!(replayed, ce.violation);
    }
}

//! # dircc
//!
//! A full reproduction of *"An Evaluation of Directory Schemes for Cache
//! Coherence"* (Anant Agarwal, Richard Simoni, John Hennessy, Mark
//! Horowitz — ISCA 1988) as a Rust library suite.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`types`] — addresses, block geometry, cache/CPU/process ids;
//! * [`trace`] — trace records, codecs, statistics and the synthetic
//!   workload generator standing in for the paper's ATUM traces;
//! * [`cache`] — infinite and finite cache tag stores;
//! * [`core`] — the protocols: the `Dir_i_B` / `Dir_i_NB` directory
//!   taxonomy (`Dir1NB`, `DiriNB`, `DirnNB`, `Dir0B`, `DiriB`, coded-set,
//!   Tang, Yen-Fu) and the snoopy comparison points (WTI, Dragon,
//!   Berkeley);
//! * [`bus`] — the paper's pipelined and non-pipelined bus cost models;
//! * [`obs`] — zero-cost observability: the [`Recorder`](obs::Recorder)
//!   hook, windowed time series, span profiling and structured export;
//! * [`check`] — bounded exhaustive model checking of every protocol
//!   (SWMR, directory/cache agreement, data-value coherence);
//! * [`sim`] — the replay engine, metrics and the experiment runners that
//!   regenerate every table and figure.
//!
//! # Quickstart
//!
//! Compare `Dir0B` against Dragon on a synthetic POPS-like trace:
//!
//! ```
//! use dircc::bus::{CostConfig, CostModel};
//! use dircc::core::ProtocolKind;
//! use dircc::sim::{TraceFilter, Workbench};
//!
//! let wb = Workbench::paper_scaled(50_000, 42);
//! let dir0b = wb.evaluation(ProtocolKind::Dir0B, 0, TraceFilter::Full);
//! let dragon = wb.evaluation(ProtocolKind::Dragon, 0, TraceFilter::Full);
//! let m = CostModel::pipelined();
//! let c = CostConfig::PAPER;
//! assert!(dir0b.cycles_per_ref(&m, &c) > dragon.cycles_per_ref(&m, &c));
//! ```

pub use dircc_bus as bus;
pub use dircc_cache as cache;
pub use dircc_check as check;
pub use dircc_core as core;
pub use dircc_obs as obs;
pub use dircc_serve as serve;
pub use dircc_sim as sim;
pub use dircc_trace as trace;
pub use dircc_types as types;
